package state

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"dmvcc/internal/state/kvdisk"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// Disk-backed flat store: account, slot, code, and root-history records in
// one log-structured file, trie nodes in a second. Only the kvdisk indexes
// stay resident, so state far beyond RAM-resident maps runs in bounded
// memory (the 1M-account soak of the statescale experiment).
//
// Record keys are prefix-tagged:
//
//	'a' + address           -> RLP account record
//	's' + address + slot    -> slot value bytes (big-endian, trimmed)
//	'c' + code hash         -> contract code
//	'R'                     -> concatenated committed roots (block order)
//	'n' + node hash         -> trie node encoding (nodes log)

// kvReadRetries bounds transient-read retry attempts before a read error is
// surfaced (or, on the Reader hot path, escalated). Injected chaos faults
// are transient by contract; real I/O errors exhaust the budget quickly.
const kvReadRetries = 8

// retryGet is Get with bounded retry and a short linear backoff.
func retryGet(kv *kvdisk.Store, key []byte) ([]byte, bool, error) {
	var lastErr error
	for attempt := 0; attempt < kvReadRetries; attempt++ {
		v, ok, err := kv.Get(key)
		if err == nil {
			return v, ok, nil
		}
		lastErr = err
		time.Sleep(time.Duration(attempt) * 50 * time.Microsecond)
	}
	return nil, false, fmt.Errorf("state: kv read exhausted %d retries: %w", kvReadRetries, lastErr)
}

type diskFlatStore struct {
	kv *kvdisk.Store
}

func openDiskStores(dir string) (*diskFlatStore, *diskNodeStore, *kvdisk.Recovery, *kvdisk.Recovery, error) {
	flat, flatRec, err := kvdisk.OpenRecover(dir, "flat")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	nodes, nodesRec, err := kvdisk.OpenRecover(dir, "nodes")
	if err != nil {
		flat.Close()
		return nil, nil, nil, nil, err
	}
	return &diskFlatStore{kv: flat}, &diskNodeStore{kv: nodes}, flatRec, nodesRec, nil
}

// Commit-marker meta layout: 8-byte big-endian height followed by the
// 32-byte state root at that height. Both logs carry the same meta for each
// committed block, so recovery can reconcile them by height.
const commitMetaLen = 8 + len(types.Hash{})

func encodeCommitMeta(height uint64, root types.Hash) []byte {
	meta := make([]byte, commitMetaLen)
	binary.BigEndian.PutUint64(meta, height)
	copy(meta[8:], root[:])
	return meta
}

func decodeCommitMeta(meta []byte) (uint64, types.Hash, error) {
	if len(meta) != commitMetaLen {
		return 0, types.Hash{}, fmt.Errorf("state: commit marker meta is %d bytes, want %d", len(meta), commitMetaLen)
	}
	var root types.Hash
	copy(root[:], meta[8:])
	return binary.BigEndian.Uint64(meta), root, nil
}

func accountKey(addr types.Address) []byte {
	k := make([]byte, 1+len(addr))
	k[0] = 'a'
	copy(k[1:], addr[:])
	return k
}

func slotDiskKey(addr types.Address, key types.Hash) []byte {
	k := make([]byte, 1+len(addr)+len(key))
	k[0] = 's'
	copy(k[1:], addr[:])
	copy(k[1+len(addr):], key[:])
	return k
}

func codeKey(h types.Hash) []byte {
	k := make([]byte, 1+len(h))
	k[0] = 'c'
	copy(k[1:], h[:])
	return k
}

var rootsKey = []byte{'R'}

func (d *diskFlatStore) getAccount(addr types.Address) (Account, bool, error) {
	enc, ok, err := retryGet(d.kv, accountKey(addr))
	if err != nil || !ok {
		return Account{}, false, err
	}
	acc, err := decodeAccount(enc)
	if err != nil {
		return Account{}, false, fmt.Errorf("state: corrupt account record %s: %w", addr, err)
	}
	return acc, true, nil
}

func (d *diskFlatStore) putAccount(addr types.Address, acc Account) error {
	return d.kv.Put(accountKey(addr), encodeAccount(acc))
}

func (d *diskFlatStore) getSlot(addr types.Address, key types.Hash) (u256.Int, bool, error) {
	enc, ok, err := retryGet(d.kv, slotDiskKey(addr, key))
	if err != nil || !ok {
		return u256.Int{}, false, err
	}
	return u256.FromBytes(enc), true, nil
}

func (d *diskFlatStore) putSlot(addr types.Address, key types.Hash, val u256.Int) error {
	return d.kv.Put(slotDiskKey(addr, key), val.Bytes())
}

func (d *diskFlatStore) deleteSlot(addr types.Address, key types.Hash) error {
	return d.kv.Delete(slotDiskKey(addr, key))
}

func (d *diskFlatStore) getCode(h types.Hash) ([]byte, error) {
	code, _, err := retryGet(d.kv, codeKey(h))
	return code, err
}

func (d *diskFlatStore) putCode(h types.Hash, code []byte) error {
	return d.kv.Put(codeKey(h), code)
}

func (d *diskFlatStore) putRoots(roots []types.Hash) error {
	enc := make([]byte, 0, len(roots)*len(types.Hash{}))
	for _, r := range roots {
		enc = append(enc, r[:]...)
	}
	return d.kv.Put(rootsKey, enc)
}

// loadRoots restores the committed-root history persisted by putRoots; a
// missing record (fresh store) returns nil.
func (d *diskFlatStore) loadRoots() ([]types.Hash, error) {
	enc, ok, err := retryGet(d.kv, rootsKey)
	if err != nil || !ok {
		return nil, err
	}
	hl := len(types.Hash{})
	if len(enc)%hl != 0 {
		return nil, fmt.Errorf("state: corrupt root history (%d bytes)", len(enc))
	}
	roots := make([]types.Hash, len(enc)/hl)
	for i := range roots {
		copy(roots[i][:], enc[i*hl:])
	}
	return roots, nil
}

func (d *diskFlatStore) flush() error { return d.kv.Flush() }
func (d *diskFlatStore) close() error { return d.kv.Close() }

// diskNodeStore adapts a kvdisk log to trie.Store. PutNode's interface has
// no error return (the in-memory store cannot fail), so write failures are
// held as a sticky error the backend surfaces at the end of the commit that
// caused them.
type diskNodeStore struct {
	kv *kvdisk.Store

	mu  sync.Mutex
	err error
}

func nodeKey(h types.Hash) []byte {
	k := make([]byte, 1+len(h))
	k[0] = 'n'
	copy(k[1:], h[:])
	return k
}

// GetNode implements trie.Store.
func (d *diskNodeStore) GetNode(h types.Hash) ([]byte, error) {
	enc, ok, err := retryGet(d.kv, nodeKey(h))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("state: missing trie node %s", h)
	}
	return enc, nil
}

// PutNode implements trie.Store.
func (d *diskNodeStore) PutNode(h types.Hash, enc []byte) {
	if err := d.kv.Put(nodeKey(h), enc); err != nil {
		d.recordErr(err)
	}
}

func (d *diskNodeStore) recordErr(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.mu.Unlock()
}

// stickyErr returns and clears the first node-write failure since the last
// check.
func (d *diskNodeStore) stickyErr() error {
	d.mu.Lock()
	err := d.err
	d.err = nil
	d.mu.Unlock()
	return err
}
