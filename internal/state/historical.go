package state

import (
	"errors"
	"fmt"
	"sync"

	"dmvcc/internal/trie"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// ErrUnknownRoot reports a request for a state root the backend never
// committed.
var ErrUnknownRoot = errors.New("state: unknown state root")

// Historical is a read-only view of the blockchain state at a past root,
// resolved through the committed tries (the paper's snapshots S^l: "since
// all transactions are stored persistently on the blockchain, we may easily
// recover the states of blockchain at a certain block height"). It works
// against any Backend's trie store — the reference DB's incrementally
// committed tries and the flat backends' lazily built commit tries persist
// identical node sets along any committed path. Reads are slower than the
// flat committed view — every access walks the trie — and results are
// memoized. Historical is safe for concurrent use.
type Historical struct {
	store trie.Store
	codes func(types.Hash) []byte
	root  types.Hash

	mu       sync.Mutex
	accounts map[types.Address]*Account // nil entry = proven absent
	storage  map[storageKey]u256.Int
}

var _ Reader = (*Historical)(nil)

// NewHistorical returns a trie-walking reader of the state at root, resolved
// against a backend's node store. codes resolves code hashes to bytecode
// (Backend.CodeByHash); a nil codes never resolves code.
func NewHistorical(root types.Hash, store trie.Store, codes func(types.Hash) []byte) *Historical {
	return &Historical{
		store:    store,
		codes:    codes,
		root:     root,
		accounts: make(map[types.Address]*Account),
		storage:  make(map[storageKey]u256.Int),
	}
}

// StateAt implements Backend: a reader for the state as of the given
// committed root.
func (db *DB) StateAt(root types.Hash) (Reader, error) {
	db.mu.RLock()
	known := false
	for _, r := range db.roots {
		if r == root {
			known = true
			break
		}
	}
	db.mu.RUnlock()
	if !known {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRoot, root)
	}
	return NewHistorical(root, db.store, db.CodeByHash), nil
}

// account loads (and memoizes) the account record at the historical root.
func (h *Historical) account(addr types.Address) *Account {
	h.mu.Lock()
	defer h.mu.Unlock()
	if acc, ok := h.accounts[addr]; ok {
		return acc
	}
	acc := h.loadAccount(addr)
	h.accounts[addr] = acc
	return acc
}

func (h *Historical) loadAccount(addr types.Address) *Account {
	t, err := trie.New(h.root, h.store)
	if err != nil {
		return nil
	}
	key := types.Keccak(addr[:])
	enc, err := t.Get(key[:])
	if err != nil {
		return nil // absent (or unresolvable) account
	}
	acc, err := decodeAccount(enc)
	if err != nil {
		return nil
	}
	return &acc
}

// Balance implements Reader.
func (h *Historical) Balance(addr types.Address) u256.Int {
	if acc := h.account(addr); acc != nil {
		return acc.Balance
	}
	return u256.Int{}
}

// Nonce implements Reader.
func (h *Historical) Nonce(addr types.Address) uint64 {
	if acc := h.account(addr); acc != nil {
		return acc.Nonce
	}
	return 0
}

// Code implements Reader.
func (h *Historical) Code(addr types.Address) []byte {
	acc := h.account(addr)
	if acc == nil || acc.CodeHash.IsZero() || acc.CodeHash == EmptyCodeHash {
		return nil
	}
	if h.codes == nil {
		return nil
	}
	return h.codes(acc.CodeHash)
}

// Storage implements Reader.
func (h *Historical) Storage(addr types.Address, key types.Hash) u256.Int {
	sk := storageKey{addr, key}
	h.mu.Lock()
	if v, ok := h.storage[sk]; ok {
		h.mu.Unlock()
		return v
	}
	h.mu.Unlock()

	var val u256.Int
	if acc := h.account(addr); acc != nil && !acc.StorageRoot.IsZero() && acc.StorageRoot != trie.EmptyRoot {
		if st, err := trie.New(acc.StorageRoot, h.store); err == nil {
			hk := types.Keccak(key[:])
			if enc, err := st.Get(hk[:]); err == nil {
				val = u256.FromBytes(enc)
			}
		}
	}
	h.mu.Lock()
	h.storage[sk] = val
	h.mu.Unlock()
	return val
}

// Exists implements Reader.
func (h *Historical) Exists(addr types.Address) bool {
	return h.account(addr) != nil
}

// Root returns the historical root this view resolves against.
func (h *Historical) Root() types.Hash { return h.root }
