package state

import (
	"bytes"
	"testing"

	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// overlayBackends returns every Backend flavor an Overlay can sit on, each
// pre-seeded with the same base state.
func overlayBackends(t *testing.T) map[string]Backend {
	t.Helper()
	seed := func(b Backend) {
		ws := NewWriteSet()
		ws.Balances[addrA] = u256.NewUint64(1000)
		ws.Nonces[addrA] = 5
		ws.Codes[addrB] = []byte{0x60, 0x01}
		ws.SetStorage(addrB, slot1, u256.NewUint64(77))
		if _, err := b.Commit(ws); err != nil {
			t.Fatal(err)
		}
	}
	backends := map[string]Backend{"db": NewDB(), "flat": NewFlatMem()}
	for _, b := range backends {
		seed(b)
	}
	t.Cleanup(func() {
		for _, b := range backends {
			b.Close()
		}
	})
	return backends
}

// TestOverlayReadThrough: unwritten keys fall through the overlay to the
// backend, identically over the trie-backed and flat backends.
func TestOverlayReadThroughBackends(t *testing.T) {
	for name, b := range overlayBackends(t) {
		o := NewOverlay(b)
		if got := o.Balance(addrA); got.Uint64() != 1000 {
			t.Errorf("%s: read-through balance = %d", name, got.Uint64())
		}
		if got := o.Nonce(addrA); got != 5 {
			t.Errorf("%s: read-through nonce = %d", name, got)
		}
		if got := o.Code(addrB); !bytes.Equal(got, []byte{0x60, 0x01}) {
			t.Errorf("%s: read-through code = %x", name, got)
		}
		if got := o.Storage(addrB, slot1); got.Uint64() != 77 {
			t.Errorf("%s: read-through storage = %d", name, got.Uint64())
		}
		if !o.Exists(addrA) || o.Exists(types.HexToAddress("0x99")) {
			t.Errorf("%s: read-through exists wrong", name)
		}
	}
}

// TestOverlayWriteBack: overlay writes shadow the base, Changes extracts
// them, and committing the changes to the backend lands the same post-state
// on both backend flavors (same root too, since the histories match).
func TestOverlayWriteBackBackends(t *testing.T) {
	backends := overlayBackends(t)
	roots := make(map[string]types.Hash)
	for name, b := range backends {
		o := NewOverlay(b)
		o.SetBalance(addrA, u256.NewUint64(900))
		o.SetNonce(addrA, 6)
		o.SetStorage(addrB, slot1, u256.NewUint64(88))
		o.SetStorage(addrB, slot2, u256.NewUint64(99))
		o.SetCode(addrA, []byte{0xfe})

		// Overlay sees its own writes; backend still sees the old state.
		if got := o.Balance(addrA); got.Uint64() != 900 {
			t.Errorf("%s: overlay balance = %d", name, got.Uint64())
		}
		if got := b.Balance(addrA); got.Uint64() != 1000 {
			t.Errorf("%s: backend balance leaked = %d", name, got.Uint64())
		}

		root, err := b.Commit(o.Changes())
		if err != nil {
			t.Fatal(err)
		}
		roots[name] = root
		if got := b.Balance(addrA); got.Uint64() != 900 {
			t.Errorf("%s: committed balance = %d", name, got.Uint64())
		}
		if got := b.Storage(addrB, slot2); got.Uint64() != 99 {
			t.Errorf("%s: committed slot2 = %d", name, got.Uint64())
		}
		if got := b.Code(addrA); !bytes.Equal(got, []byte{0xfe}) {
			t.Errorf("%s: committed code = %x", name, got)
		}
	}
	if roots["db"] != roots["flat"] {
		t.Errorf("write-back roots diverge: db %s, flat %s", roots["db"], roots["flat"])
	}
}

// TestOverlaySnapshotRevert: nested snapshots unwind overlay writes without
// touching the base, over both backends.
func TestOverlaySnapshotRevertBackends(t *testing.T) {
	for name, b := range overlayBackends(t) {
		o := NewOverlay(b)
		o.SetBalance(addrA, u256.NewUint64(500))
		snap := o.Snapshot()
		o.SetBalance(addrA, u256.NewUint64(1))
		o.SetStorage(addrB, slot1, u256.Zero)
		o.RevertToSnapshot(snap)
		if got := o.Balance(addrA); got.Uint64() != 500 {
			t.Errorf("%s: post-revert balance = %d", name, got.Uint64())
		}
		if got := o.Storage(addrB, slot1); got.Uint64() != 77 {
			t.Errorf("%s: post-revert storage = %d", name, got.Uint64())
		}
		if ws := o.Changes(); len(ws.Storage) != 0 {
			t.Errorf("%s: reverted storage write leaked into Changes", name)
		}
	}
}
