package state

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmvcc/internal/state/kvdisk"
	"dmvcc/internal/trie"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// flatStore is the key-value substrate behind a FlatBackend: plain
// account/slot/code records with no trie structure. Two implementations
// exist — memFlatStore (maps) and diskFlatStore (kvdisk logs) — and the
// backend's commit logic is identical over both. All methods are called with
// the backend's mutex held (read methods under RLock), so implementations
// need no locking of their own beyond what their substrate requires.
type flatStore interface {
	getAccount(addr types.Address) (Account, bool, error)
	putAccount(addr types.Address, acc Account) error
	getSlot(addr types.Address, key types.Hash) (u256.Int, bool, error)
	putSlot(addr types.Address, key types.Hash, val u256.Int) error
	deleteSlot(addr types.Address, key types.Hash) error
	getCode(h types.Hash) ([]byte, error)
	putCode(h types.Hash, code []byte) error
	// putRoots persists the committed-root history (no-op in memory); flush
	// forces buffered writes down (the disk store's chaos flush point).
	putRoots(roots []types.Hash) error
	flush() error
	close() error
}

// slotWrite is one captured storage write (zero value = delete), in the
// deterministic order the trie job applies them.
type slotWrite struct {
	key types.Hash
	val u256.Int
}

// trieJob is the deferred authenticated-commit work for one block: the
// account field values captured at flat-apply time plus the block's storage
// writes. Jobs run strictly FIFO on the background committer, so each job
// sees exactly the storage roots its predecessor left behind.
type trieJob struct {
	order    []types.Address
	accounts map[types.Address]Account // Balance/Nonce/CodeHash as of this block
	storage  map[types.Address][]slotWrite
	workers  int
	flatNs   int64
	res      chan CommitResult
}

// FlatBackend is the flat-KV state backend of this PR's tentpole: reads are
// plain map (or disk-index) lookups that never touch a trie node, and the
// Merkle commitment is built lazily at commit time from the block's dirty
// set only. The account trie is key-range sharded (trie.ShardCount subtries
// by first nibble of the hashed address) so shard hashing runs in parallel,
// and commits can run asynchronously — flat state applies synchronously,
// trie hashing rides a background FIFO committer — taking the authenticated
// commit off the execution pipeline's critical path.
//
// FlatBackend produces byte-identical roots to the reference trie-backed DB
// for every commit history; the cross-backend differential tests enforce it.
type FlatBackend struct {
	mu sync.RWMutex // guards fs, root, roots, lastStats
	fs flatStore

	nodes  trie.Store
	shards int
	// Exactly one of sharded/plain is non-nil, per the shard count. Only the
	// committer goroutine touches them after construction.
	sharded *trie.ShardedTrie
	plain   *trie.Trie

	root      types.Hash
	roots     []types.Hash
	lastStats CommitStats

	enqMu  sync.Mutex // serializes flat-apply + enqueue so jobs land in commit order
	jobs   chan *trieJob
	done   chan struct{}
	closed bool

	// disk is non-nil for disk-backed stores; used for fault-hook wiring and
	// Close.
	disk *diskFlatStore
	dns  *diskNodeStore

	// recInfo records what the opening recovery did (disk backends only).
	recInfo *RecoveryInfo
}

var (
	_ Backend        = (*FlatBackend)(nil)
	_ AsyncCommitter = (*FlatBackend)(nil)
)

// FlatOpts configures a FlatBackend.
type FlatOpts struct {
	// Shards is the account-trie fan-out: 1 (single lazy trie) or
	// trie.ShardCount (parallel shard hashing). 0 defaults to
	// trie.ShardCount.
	Shards int
	// Dir, when non-empty, backs the flat records and trie nodes with
	// log-structured files under this directory, bounding resident memory to
	// the key indexes. Empty keeps everything in memory.
	Dir string
}

// NewFlat returns a FlatBackend at the empty root.
func NewFlat(opts FlatOpts) (*FlatBackend, error) {
	shards := opts.Shards
	if shards == 0 {
		shards = trie.ShardCount
	}
	if shards != 1 && shards != trie.ShardCount {
		return nil, fmt.Errorf("state: flat backend supports 1 or %d shards, got %d", trie.ShardCount, shards)
	}
	fb := &FlatBackend{
		shards: shards,
		root:   trie.EmptyRoot,
		roots:  []types.Hash{trie.EmptyRoot},
		jobs:   make(chan *trieJob, 64),
		done:   make(chan struct{}),
	}
	if opts.Dir == "" {
		fb.fs = newMemFlatStore()
		fb.nodes = trie.NewMemStore()
	} else {
		dfs, dns, flatRec, nodesRec, err := openDiskStores(opts.Dir)
		if err != nil {
			return nil, err
		}
		fb.fs = dfs
		fb.nodes = dns
		fb.disk = dfs
		fb.dns = dns
		if err := fb.recoverDisk(flatRec, nodesRec); err != nil {
			dfs.kv.Close()
			dns.kv.Close()
			return nil, err
		}
	}
	if shards == trie.ShardCount {
		st, err := trie.OpenSharded(fb.root, fb.nodes)
		if err != nil {
			return nil, err
		}
		fb.sharded = st
	} else {
		t, err := trie.New(fb.root, fb.nodes)
		if err != nil {
			return nil, err
		}
		fb.plain = t
	}
	go fb.committerLoop()
	return fb, nil
}

// NewFlatMem returns an in-memory FlatBackend with the default shard count.
// It cannot fail, making it a drop-in for state.NewDB in tests and tools.
func NewFlatMem() *FlatBackend {
	fb, err := NewFlat(FlatOpts{})
	if err != nil {
		panic(fmt.Sprintf("state: NewFlatMem: %v", err))
	}
	return fb
}

// SetKVFaultHooks installs chaos hooks on the disk stores (no-op for
// in-memory backends): read may fail any KV read with a transient error,
// flush stalls log flushes. See internal/fault for the injector this is
// normally wired to — the indirection keeps state free of a fault import.
func (fb *FlatBackend) SetKVFaultHooks(read func(key []byte) error, flush func() time.Duration) {
	if fb.disk == nil {
		return
	}
	fb.disk.kv.SetFaultHooks(read, flush)
	fb.dns.kv.SetFaultHooks(read, flush)
}

// DiskBacked reports whether this backend persists to disk.
func (fb *FlatBackend) DiskBacked() bool { return fb.disk != nil }

// SizeOnDisk returns the combined size of the backend's logs in bytes
// (0 for in-memory backends).
func (fb *FlatBackend) SizeOnDisk() int64 {
	if fb.disk == nil {
		return 0
	}
	return fb.disk.kv.SizeOnDisk() + fb.dns.kv.SizeOnDisk()
}

// Shards returns the account-trie fan-out.
func (fb *FlatBackend) Shards() int { return fb.shards }

// recoverDisk restores a disk-backed backend to its last durable (height,
// root) after the kvdisk-level recovery of both logs. The two logs can
// legitimately disagree by one commit — persistCommit marks the nodes log
// before the flat log, so a crash in the window leaves nodes one height
// ahead (harmless: content-addressed orphans) — but the flat log must never
// be ahead of the nodes log, or its root would reference trie nodes that did
// not survive. When it is (a torn nodes tail), the flat log rolls back to
// the newest marker whose height the nodes log still covers.
func (fb *FlatBackend) recoverDisk(flatRec, nodesRec *kvdisk.Recovery) error {
	info := &RecoveryInfo{
		TornTail:          flatRec.TornTail || nodesRec.TornTail,
		RolledBackBytes:   flatRec.RolledBackBytes + nodesRec.RolledBackBytes,
		RolledBackRecords: flatRec.RolledBackRecords + nodesRec.RolledBackRecords,
	}
	markerHeight := func(meta []byte) (int64, types.Hash, error) {
		if len(meta) == 0 {
			return -1, types.Hash{}, nil
		}
		h, r, err := decodeCommitMeta(meta)
		return int64(h), r, err
	}
	nodesH, _, err := markerHeight(nodesRec.LastMeta)
	if err != nil {
		return fmt.Errorf("state: nodes log marker: %w", err)
	}
	flatH, flatRoot, err := markerHeight(flatRec.LastMeta)
	if err != nil {
		return fmt.Errorf("state: flat log marker: %w", err)
	}
	if flatH > nodesH {
		metas := fb.disk.kv.MarkerMetas()
		target := -1
		newH, newRoot := int64(-1), types.Hash{}
		for i := len(metas) - 1; i >= 0; i-- {
			h, r, err := decodeCommitMeta(metas[i])
			if err != nil {
				return fmt.Errorf("state: flat log marker %d: %w", i, err)
			}
			if int64(h) <= nodesH {
				target, newH, newRoot = i, int64(h), r
				break
			}
		}
		rb, err := fb.disk.kv.RollbackToMarker(target)
		if err != nil {
			return fmt.Errorf("state: reconcile flat log to height %d: %w", nodesH, err)
		}
		info.HeightRollback = int(flatH - newH)
		info.RolledBackBytes += rb.RolledBackBytes
		info.RolledBackRecords += rb.RolledBackRecords
		flatH, flatRoot = newH, newRoot
	}
	if flatH >= 0 {
		roots, err := fb.disk.loadRoots()
		if err != nil {
			return err
		}
		if int64(len(roots)) != flatH+1 {
			return fmt.Errorf("state: recovered root history has %d entries, marker height %d wants %d", len(roots), flatH, flatH+1)
		}
		if roots[flatH] != flatRoot {
			return fmt.Errorf("state: recovered root %s at height %d disagrees with commit marker %s", roots[flatH], flatH, flatRoot)
		}
		fb.roots = roots
		fb.root = flatRoot
		info.Height = uint64(flatH)
		info.Root = flatRoot
	} else {
		// No durable commit marker: a fresh store (or one rolled back to
		// empty). Fall back to the root history for marker-less legacy logs.
		roots, err := fb.disk.loadRoots()
		if err != nil {
			return err
		}
		if len(roots) > 0 {
			fb.roots = roots
			fb.root = roots[len(roots)-1]
			info.Height = uint64(len(roots) - 1)
		}
		info.Root = fb.root
	}
	fb.recInfo = info
	return nil
}

// RecoveryInfo reports what the opening recovery did: the durable height and
// root the backend resumed from, whether either log had a torn tail, and how
// much was rolled back. Nil for in-memory backends.
func (fb *FlatBackend) RecoveryInfo() *RecoveryInfo {
	if fb.recInfo == nil {
		return nil
	}
	cp := *fb.recInfo
	return &cp
}

// Height returns the number of committed blocks (committed-root history
// length minus the empty genesis root).
func (fb *FlatBackend) Height() uint64 {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	return uint64(len(fb.roots) - 1)
}

// VerifyRecovered recomputes the state root from the flat records alone — a
// fresh in-memory trie fold of every live account, slot, and code record —
// and checks it equals the recovered root. It proves the flat store and the
// authenticated commitment agree after a crash, at full-state-walk cost.
func (fb *FlatBackend) VerifyRecovered() error {
	fb.mu.RLock()
	want := fb.root
	fb.mu.RUnlock()
	if fb.disk == nil {
		return nil
	}
	ws := &WriteSet{
		Balances: make(map[types.Address]u256.Int),
		Nonces:   make(map[types.Address]uint64),
		Codes:    make(map[types.Address][]byte),
		Storage:  make(map[types.Address]map[types.Hash]u256.Int),
	}
	addrLen := len(types.Address{})
	hashLen := len(types.Hash{})
	err := fb.disk.kv.Range([]byte{'a'}, func(k, v []byte) error {
		if len(k) != 1+addrLen {
			return fmt.Errorf("state: malformed account key (%d bytes)", len(k))
		}
		var addr types.Address
		copy(addr[:], k[1:])
		acc, err := decodeAccount(v)
		if err != nil {
			return fmt.Errorf("state: corrupt account record %s: %w", addr, err)
		}
		ws.Balances[addr] = acc.Balance
		ws.Nonces[addr] = acc.Nonce
		if !acc.CodeHash.IsZero() && acc.CodeHash != EmptyCodeHash {
			code, err := fb.fs.getCode(acc.CodeHash)
			if err != nil {
				return err
			}
			if len(code) == 0 {
				return fmt.Errorf("state: account %s references missing code %s", addr, acc.CodeHash)
			}
			ws.Codes[addr] = code
		}
		return nil
	})
	if err != nil {
		return err
	}
	err = fb.disk.kv.Range([]byte{'s'}, func(k, v []byte) error {
		if len(k) != 1+addrLen+hashLen {
			return fmt.Errorf("state: malformed slot key (%d bytes)", len(k))
		}
		var addr types.Address
		var slot types.Hash
		copy(addr[:], k[1:])
		copy(slot[:], k[1+addrLen:])
		m, ok := ws.Storage[addr]
		if !ok {
			m = make(map[types.Hash]u256.Int)
			ws.Storage[addr] = m
		}
		m[slot] = u256.FromBytes(v)
		return nil
	})
	if err != nil {
		return err
	}
	twin := NewFlatMem()
	defer twin.Close()
	got, err := twin.Commit(ws)
	if err != nil {
		return fmt.Errorf("state: recovery verification commit: %w", err)
	}
	if got != want {
		return fmt.Errorf("state: recovered root %s does not match flat records (recomputed %s)", want, got)
	}
	return nil
}

// SetNoSync toggles crash simulation on the underlying logs (no-op for
// in-memory backends): while set, appended records stay in the write buffers
// and commit markers never reach disk, so a Crash drops them. Torture-
// harness use only.
func (fb *FlatBackend) SetNoSync(v bool) {
	if fb.disk == nil {
		return
	}
	fb.disk.kv.SetNoSync(v)
	fb.dns.kv.SetNoSync(v)
}

// Crash simulates process death: the committer drains (anything already
// enqueued was submitted before the "crash"), then the logs close without
// flushing their buffers. Reopening the directory recovers to the last
// durable commit marker. Torture-harness use only.
func (fb *FlatBackend) Crash() error {
	fb.enqMu.Lock()
	if fb.closed {
		fb.enqMu.Unlock()
		return nil
	}
	fb.closed = true
	close(fb.jobs)
	fb.enqMu.Unlock()
	<-fb.done
	if fb.disk == nil {
		return nil
	}
	fb.disk.kv.CrashClose()
	return fb.dns.kv.CrashClose()
}

// DurabilityStats snapshots the backend's durability counters across both
// logs (zero value with Persistent=false for in-memory backends).
func (fb *FlatBackend) DurabilityStats() DurabilityStats {
	if fb.disk == nil {
		return DurabilityStats{}
	}
	fs := fb.disk.kv.Stats()
	ns := fb.dns.kv.Stats()
	d := DurabilityStats{
		Persistent:   true,
		Fsyncs:       fs.Fsyncs + ns.Fsyncs,
		SyncNs:       fs.SyncNs + ns.SyncNs,
		FlushedBytes: fs.FlushedBytes + ns.FlushedBytes,
		Commits:      fs.Commits,
		LogBytes:     fb.SizeOnDisk(),
	}
	if fb.recInfo != nil {
		d.RecoveredHeight = fb.recInfo.Height
		d.RolledBackBytes = fb.recInfo.RolledBackBytes
	}
	return d
}

// --- Reader (flat lookups; no trie nodes touched) ---

// Balance implements Reader.
func (fb *FlatBackend) Balance(addr types.Address) u256.Int {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	acc, _, err := fb.fs.getAccount(addr)
	if err != nil {
		panic(fmt.Sprintf("state: flat read failed after retries: %v", err))
	}
	return acc.Balance
}

// Nonce implements Reader.
func (fb *FlatBackend) Nonce(addr types.Address) uint64 {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	acc, _, err := fb.fs.getAccount(addr)
	if err != nil {
		panic(fmt.Sprintf("state: flat read failed after retries: %v", err))
	}
	return acc.Nonce
}

// Code implements Reader.
func (fb *FlatBackend) Code(addr types.Address) []byte {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	acc, ok, err := fb.fs.getAccount(addr)
	if err != nil {
		panic(fmt.Sprintf("state: flat read failed after retries: %v", err))
	}
	if !ok || acc.CodeHash.IsZero() || acc.CodeHash == EmptyCodeHash {
		return nil
	}
	code, err := fb.fs.getCode(acc.CodeHash)
	if err != nil {
		panic(fmt.Sprintf("state: flat read failed after retries: %v", err))
	}
	return code
}

// Storage implements Reader.
func (fb *FlatBackend) Storage(addr types.Address, key types.Hash) u256.Int {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	v, _, err := fb.fs.getSlot(addr, key)
	if err != nil {
		panic(fmt.Sprintf("state: flat read failed after retries: %v", err))
	}
	return v
}

// Exists implements Reader.
func (fb *FlatBackend) Exists(addr types.Address) bool {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	_, ok, err := fb.fs.getAccount(addr)
	if err != nil {
		panic(fmt.Sprintf("state: flat read failed after retries: %v", err))
	}
	return ok
}

// --- Backend ---

// Root returns the latest root whose trie commit has completed.
func (fb *FlatBackend) Root() types.Hash {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	return fb.root
}

// Roots implements Backend.
func (fb *FlatBackend) Roots() []types.Hash {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	out := make([]types.Hash, len(fb.roots))
	copy(out, fb.roots)
	return out
}

// TrieStore implements Backend.
func (fb *FlatBackend) TrieStore() trie.Store { return fb.nodes }

// CodeByHash implements Backend.
func (fb *FlatBackend) CodeByHash(h types.Hash) []byte {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	code, err := fb.fs.getCode(h)
	if err != nil {
		panic(fmt.Sprintf("state: flat read failed after retries: %v", err))
	}
	return code
}

// StateAt implements Backend: a trie-walking reader at a past committed root.
func (fb *FlatBackend) StateAt(root types.Hash) (Reader, error) {
	fb.mu.RLock()
	known := false
	for _, r := range fb.roots {
		if r == root {
			known = true
			break
		}
	}
	fb.mu.RUnlock()
	if !known {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRoot, root)
	}
	return NewHistorical(root, fb.nodes, fb.CodeByHash), nil
}

// LastCommitStats returns the timing split of the most recent completed
// commit.
func (fb *FlatBackend) LastCommitStats() CommitStats {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	return fb.lastStats
}

// Commit implements Backend: synchronous commit at default parallelism.
func (fb *FlatBackend) Commit(ws *WriteSet) (types.Hash, error) {
	return fb.CommitWith(ws, 0)
}

// CommitWith implements Backend: it enqueues the commit and waits for the
// trie build, so on return the root is final and visible.
func (fb *FlatBackend) CommitWith(ws *WriteSet, workers int) (types.Hash, error) {
	res := <-fb.CommitAsync(ws, workers)
	return res.Root, res.Err
}

// CommitAsync implements AsyncCommitter: the flat state applies before it
// returns (subsequent reads see the post-state); the trie build and the new
// root land later, delivered on the returned channel. Jobs complete strictly
// in submission order.
func (fb *FlatBackend) CommitAsync(ws *WriteSet, workers int) <-chan CommitResult {
	fb.enqMu.Lock()
	defer fb.enqMu.Unlock()
	res := make(chan CommitResult, 1)
	if fb.closed {
		res <- CommitResult{Err: fmt.Errorf("state: commit on closed flat backend")}
		return res
	}
	job, err := fb.applyFlat(ws, workers)
	if err != nil {
		res <- CommitResult{Err: err}
		return res
	}
	job.res = res
	fb.jobs <- job
	return res
}

// applyFlat applies the write set to the flat store and captures the trie
// job. Called with enqMu held; takes fb.mu for the store mutation.
func (fb *FlatBackend) applyFlat(ws *WriteSet, workers int) (*trieJob, error) {
	start := time.Now()
	fb.mu.Lock()
	defer fb.mu.Unlock()

	touched := make(map[types.Address]struct{})
	for a := range ws.Balances {
		touched[a] = struct{}{}
	}
	for a := range ws.Nonces {
		touched[a] = struct{}{}
	}
	for a := range ws.Codes {
		touched[a] = struct{}{}
	}
	for a := range ws.Storage {
		touched[a] = struct{}{}
	}
	order := make([]types.Address, 0, len(touched))
	for a := range touched {
		order = append(order, a)
	}
	sort.Slice(order, func(i, j int) bool { return lessAddr(order[i], order[j]) })

	job := &trieJob{
		order:    order,
		accounts: make(map[types.Address]Account, len(order)),
		storage:  make(map[types.Address][]slotWrite, len(ws.Storage)),
		workers:  workers,
	}
	for _, addr := range order {
		acc, _, err := fb.fs.getAccount(addr)
		if err != nil {
			return nil, err
		}
		if v, ok := ws.Balances[addr]; ok {
			acc.Balance = v
		}
		if v, ok := ws.Nonces[addr]; ok {
			acc.Nonce = v
		}
		if code, ok := ws.Codes[addr]; ok {
			h := types.Keccak(code)
			if err := fb.fs.putCode(h, code); err != nil {
				return nil, err
			}
			acc.CodeHash = h
		}
		if err := fb.fs.putAccount(addr, acc); err != nil {
			return nil, err
		}
		job.accounts[addr] = acc

		slots, ok := ws.Storage[addr]
		if !ok {
			continue
		}
		keys := make([]types.Hash, 0, len(slots))
		for k := range slots {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return lessHash(keys[i], keys[j]) })
		writes := make([]slotWrite, 0, len(keys))
		for _, k := range keys {
			v := slots[k]
			if v.IsZero() {
				if err := fb.fs.deleteSlot(addr, k); err != nil {
					return nil, err
				}
			} else {
				if err := fb.fs.putSlot(addr, k, v); err != nil {
					return nil, err
				}
			}
			writes = append(writes, slotWrite{key: k, val: v})
		}
		job.storage[addr] = writes
	}
	job.flatNs = time.Since(start).Nanoseconds()
	return job, nil
}

// committerLoop drains trie jobs FIFO. One goroutine per backend; exits when
// Close closes the queue.
func (fb *FlatBackend) committerLoop() {
	defer close(fb.done)
	for job := range fb.jobs {
		job.res <- fb.runTrieJob(job)
	}
}

// runTrieJob builds the block's authenticated commitment: storage tries in
// parallel, then the account trie (sharded or lazy-plain), then publishes
// the root. Only the committer goroutine calls it, so the tries need no
// locking; flat-store access still goes through fb.mu.
func (fb *FlatBackend) runTrieJob(job *trieJob) CommitResult {
	stats := CommitStats{
		FlatNs:        job.flatNs,
		DirtyAccounts: len(job.order),
		Shards:        fb.shards,
	}
	workers := job.workers
	if workers <= 0 {
		workers = fb.shards
	}

	// Phase 1 (parallel): rebuild each dirty account's storage trie from its
	// last committed root. Tries are opened fresh per commit — nothing stays
	// resident between blocks — so memory tracks the dirty set, not the
	// state size.
	storageStart := time.Now()
	storageAddrs := make([]types.Address, 0, len(job.storage))
	prevRoots := make(map[types.Address]types.Hash, len(job.storage))
	fb.mu.RLock()
	for _, addr := range job.order {
		if _, ok := job.storage[addr]; !ok {
			continue
		}
		storageAddrs = append(storageAddrs, addr)
		acc, _, err := fb.fs.getAccount(addr)
		if err != nil {
			fb.mu.RUnlock()
			return CommitResult{Err: err}
		}
		prevRoots[addr] = acc.StorageRoot
		stats.DirtySlots += len(job.storage[addr])
	}
	fb.mu.RUnlock()

	sroots := make(map[types.Address]types.Hash, len(storageAddrs))
	var smu sync.Mutex
	commitOne := func(addr types.Address) error {
		st, err := trie.New(prevRoots[addr], fb.nodes)
		if err != nil {
			return fmt.Errorf("open storage trie: %w", err)
		}
		for _, w := range job.storage[addr] {
			hk := types.Keccak(w.key[:])
			if w.val.IsZero() {
				if err := st.Delete(hk[:]); err != nil {
					return fmt.Errorf("storage delete: %w", err)
				}
			} else {
				if err := st.Put(hk[:], w.val.Bytes()); err != nil {
					return fmt.Errorf("storage put: %w", err)
				}
			}
		}
		sroot, err := st.Commit()
		if err != nil {
			return fmt.Errorf("storage commit: %w", err)
		}
		smu.Lock()
		sroots[addr] = sroot
		smu.Unlock()
		return nil
	}
	if workers <= 1 || len(storageAddrs) < 2 {
		for _, addr := range storageAddrs {
			if err := commitOne(addr); err != nil {
				return CommitResult{Err: err}
			}
		}
	} else {
		w := workers
		if w > len(storageAddrs) {
			w = len(storageAddrs)
		}
		var (
			wg   sync.WaitGroup
			next atomic.Int64
			errs = make([]error, w)
		)
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(len(storageAddrs)) {
						return
					}
					if err := commitOne(storageAddrs[i]); err != nil {
						errs[slot] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return CommitResult{Err: err}
			}
		}
	}
	stats.StorageNs = time.Since(storageStart).Nanoseconds()

	// Phase 2: fold the captured account records (with fresh storage roots)
	// into the account trie in sorted address order, then hash. Accounts not
	// storage-dirty this block keep the root their record carries — FIFO job
	// order guarantees it is current as of the previous block.
	accountStart := time.Now()
	fb.mu.RLock()
	for _, addr := range job.order {
		if _, ok := sroots[addr]; ok {
			continue
		}
		acc, _, err := fb.fs.getAccount(addr)
		if err != nil {
			fb.mu.RUnlock()
			return CommitResult{Err: err}
		}
		sroots[addr] = acc.StorageRoot
	}
	fb.mu.RUnlock()
	for _, addr := range job.order {
		acc := job.accounts[addr]
		acc.StorageRoot = sroots[addr]
		job.accounts[addr] = acc
		hk := types.Keccak(addr[:])
		enc := encodeAccount(acc)
		var err error
		if fb.sharded != nil {
			err = fb.sharded.Put(hk[:], enc)
		} else {
			err = fb.plain.Put(hk[:], enc)
		}
		if err != nil {
			return CommitResult{Err: fmt.Errorf("account put: %w", err)}
		}
	}
	var root types.Hash
	var err error
	if fb.sharded != nil {
		root, err = fb.sharded.Commit(workers)
	} else {
		root, err = fb.plain.CommitLazy()
	}
	if err != nil {
		return CommitResult{Err: fmt.Errorf("account commit: %w", err)}
	}
	if fb.dns != nil {
		if err := fb.dns.stickyErr(); err != nil {
			return CommitResult{Err: err}
		}
	}
	stats.AccountNs = time.Since(accountStart).Nanoseconds()

	// Publish: write back storage roots (the trie job owns the StorageRoot
	// field; flat applies own the rest, so the read-modify-write under fb.mu
	// composes with concurrent flat applies of later blocks), append the
	// root, flush the logs.
	fb.mu.Lock()
	for _, addr := range storageAddrs {
		acc, _, err := fb.fs.getAccount(addr)
		if err != nil {
			fb.mu.Unlock()
			return CommitResult{Err: err}
		}
		acc.StorageRoot = sroots[addr]
		if err := fb.fs.putAccount(addr, acc); err != nil {
			fb.mu.Unlock()
			return CommitResult{Err: err}
		}
	}
	fb.root = root
	fb.roots = append(fb.roots, root)
	if err := fb.fs.putRoots(fb.roots); err != nil {
		fb.mu.Unlock()
		return CommitResult{Err: err}
	}
	height := uint64(len(fb.roots) - 1)
	fb.mu.Unlock()
	syncStart := time.Now()
	if err := fb.persistCommit(height, root); err != nil {
		return CommitResult{Err: err}
	}
	stats.SyncNs = time.Since(syncStart).Nanoseconds()
	fb.mu.Lock()
	fb.lastStats = stats
	fb.mu.Unlock()
	return CommitResult{Root: root, Stats: stats}
}

// persistCommit makes the commit at height durable. Ordering is the crash-
// consistency invariant: the nodes log commits (marker + fsync) strictly
// before the flat log, so the flat log's marker — the recovery point — never
// names a root whose trie nodes did not survive. A crash between the two
// fsyncs leaves the nodes log one height ahead; reopen reconciles the flat
// log down to it, and the extra nodes are harmless content-addressed
// orphans. In-memory backends just flush (a no-op).
func (fb *FlatBackend) persistCommit(height uint64, root types.Hash) error {
	if fb.disk == nil {
		return fb.fs.flush()
	}
	meta := encodeCommitMeta(height, root)
	if err := fb.dns.kv.Commit(meta); err != nil {
		return err
	}
	return fb.disk.kv.Commit(meta)
}

// Close implements Backend: drains pending commits, stops the committer,
// and closes the underlying stores.
func (fb *FlatBackend) Close() error {
	fb.enqMu.Lock()
	if fb.closed {
		fb.enqMu.Unlock()
		return nil
	}
	fb.closed = true
	close(fb.jobs)
	fb.enqMu.Unlock()
	<-fb.done
	var firstErr error
	if err := fb.fs.close(); err != nil {
		firstErr = err
	}
	if fb.dns != nil {
		if err := fb.dns.kv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- in-memory flat store ---

type memFlatStore struct {
	accounts map[types.Address]Account
	storage  map[types.Address]map[types.Hash]u256.Int
	codes    map[types.Hash][]byte
}

func newMemFlatStore() *memFlatStore {
	return &memFlatStore{
		accounts: make(map[types.Address]Account),
		storage:  make(map[types.Address]map[types.Hash]u256.Int),
		codes:    make(map[types.Hash][]byte),
	}
}

func (m *memFlatStore) getAccount(addr types.Address) (Account, bool, error) {
	acc, ok := m.accounts[addr]
	return acc, ok, nil
}

func (m *memFlatStore) putAccount(addr types.Address, acc Account) error {
	m.accounts[addr] = acc
	return nil
}

func (m *memFlatStore) getSlot(addr types.Address, key types.Hash) (u256.Int, bool, error) {
	v, ok := m.storage[addr][key]
	return v, ok, nil
}

func (m *memFlatStore) putSlot(addr types.Address, key types.Hash, val u256.Int) error {
	s, ok := m.storage[addr]
	if !ok {
		s = make(map[types.Hash]u256.Int)
		m.storage[addr] = s
	}
	s[key] = val
	return nil
}

func (m *memFlatStore) deleteSlot(addr types.Address, key types.Hash) error {
	delete(m.storage[addr], key)
	return nil
}

func (m *memFlatStore) getCode(h types.Hash) ([]byte, error) {
	return m.codes[h], nil
}

func (m *memFlatStore) putCode(h types.Hash, code []byte) error {
	m.codes[h] = code
	return nil
}

func (m *memFlatStore) putRoots([]types.Hash) error { return nil }
func (m *memFlatStore) flush() error                { return nil }
func (m *memFlatStore) close() error                { return nil }
