package state

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"dmvcc/internal/trie"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

var (
	addrA = types.HexToAddress("0xaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	addrB = types.HexToAddress("0xbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb")
	slot1 = types.HexToHash("0x01")
	slot2 = types.HexToHash("0x02")
)

func TestEmptyDB(t *testing.T) {
	db := NewDB()
	if db.Root() != trie.EmptyRoot {
		t.Errorf("empty DB root = %s", db.Root())
	}
	if got := db.Balance(addrA); !got.IsZero() {
		t.Errorf("balance of fresh account = %s", got.Hex())
	}
	if db.Exists(addrA) {
		t.Error("fresh account should not exist")
	}
	if db.Code(addrA) != nil {
		t.Error("fresh account should have no code")
	}
}

func TestCommitAndRead(t *testing.T) {
	db := NewDB()
	ws := NewWriteSet()
	ws.Balances[addrA] = u256.NewUint64(100)
	ws.Nonces[addrA] = 3
	ws.Codes[addrB] = []byte{0x60, 0x00}
	ws.SetStorage(addrB, slot1, u256.NewUint64(7))

	root, err := db.Commit(ws)
	if err != nil {
		t.Fatal(err)
	}
	if root == trie.EmptyRoot || root.IsZero() {
		t.Error("commit produced empty root")
	}
	if got := db.Balance(addrA); got.Uint64() != 100 {
		t.Errorf("balance = %d", got.Uint64())
	}
	if got := db.Nonce(addrA); got != 3 {
		t.Errorf("nonce = %d", got)
	}
	if got := db.Code(addrB); !bytes.Equal(got, []byte{0x60, 0x00}) {
		t.Errorf("code = %x", got)
	}
	if got := db.Storage(addrB, slot1); got.Uint64() != 7 {
		t.Errorf("storage = %s", got.Hex())
	}
	if !db.Exists(addrA) || !db.Exists(addrB) {
		t.Error("committed accounts should exist")
	}
	if n := len(db.Roots()); n != 2 {
		t.Errorf("roots history length = %d, want 2", n)
	}
}

// TestRootDeterminism: identical final states reach identical roots even if
// the writes arrive in different batches and orders.
func TestRootDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	type write struct {
		addr types.Address
		slot types.Hash
		val  u256.Int
	}
	var writes []write
	for i := 0; i < 300; i++ {
		var a types.Address
		a[0] = byte(r.Intn(10))
		var s types.Hash
		s[31] = byte(r.Intn(20))
		writes = append(writes, write{a, s, u256.NewUint64(r.Uint64()%1000 + 1)})
	}
	build := func(batches int, seed int64) types.Hash {
		db := NewDB()
		order := make([]write, len(writes))
		copy(order, writes)
		// Note: later writes to the same slot must win, so only shuffle
		// within slots by keeping last-write-wins via map collapse first.
		final := make(map[storageKey]u256.Int)
		for _, w := range order {
			final[storageKey{w.addr, w.slot}] = w.val
		}
		keys := make([]storageKey, 0, len(final))
		for k := range final {
			keys = append(keys, k)
		}
		rr := rand.New(rand.NewSource(seed))
		rr.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		per := (len(keys) + batches - 1) / batches
		var root types.Hash
		for b := 0; b < batches; b++ {
			ws := NewWriteSet()
			lo, hi := b*per, (b+1)*per
			if hi > len(keys) {
				hi = len(keys)
			}
			for _, k := range keys[lo:hi] {
				ws.SetStorage(k.addr, k.key, final[k])
			}
			var err error
			root, err = db.Commit(ws)
			if err != nil {
				t.Fatal(err)
			}
		}
		return root
	}
	first := build(1, 1)
	if got := build(3, 2); got != first {
		t.Errorf("batched commit root %s != single commit root %s", got, first)
	}
	if got := build(5, 3); got != first {
		t.Errorf("batched commit root %s != single commit root %s", got, first)
	}
}

func TestStorageDeleteViaZero(t *testing.T) {
	db := NewDB()
	ws := NewWriteSet()
	ws.SetStorage(addrA, slot1, u256.NewUint64(5))
	root1, err := db.Commit(ws)
	if err != nil {
		t.Fatal(err)
	}
	ws2 := NewWriteSet()
	ws2.SetStorage(addrA, slot1, u256.Zero)
	root2, err := db.Commit(ws2)
	if err != nil {
		t.Fatal(err)
	}
	if root1 == root2 {
		t.Error("deleting a slot should change the root")
	}
	if got := db.Storage(addrA, slot1); !got.IsZero() {
		t.Errorf("deleted slot reads %s", got.Hex())
	}
	// A fresh DB where the slot never existed (but account was touched the
	// same way) must match root2.
	db2 := NewDB()
	wsA := NewWriteSet()
	wsA.SetStorage(addrA, slot2, u256.NewUint64(1))
	if _, err := db2.Commit(wsA); err != nil {
		t.Fatal(err)
	}
	_ = root2 // roots differ because account B's history differs; main check is zero-read above
}

func TestAccountEncodingRoundTrip(t *testing.T) {
	acc := Account{
		Balance:     u256.NewUint64(123456789),
		Nonce:       42,
		CodeHash:    types.Keccak([]byte{1, 2, 3}),
		StorageRoot: types.Keccak([]byte("root")),
	}
	enc := encodeAccount(acc)
	back, err := decodeAccount(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back != acc {
		t.Errorf("round trip: %+v != %+v", back, acc)
	}
	// Zero-hash fields canonicalize to the sentinel hashes.
	enc2 := encodeAccount(Account{})
	back2, err := decodeAccount(enc2)
	if err != nil {
		t.Fatal(err)
	}
	if back2.CodeHash != EmptyCodeHash || back2.StorageRoot != trie.EmptyRoot {
		t.Errorf("zero account canonicalization: %+v", back2)
	}
}

func TestConcurrentReaders(t *testing.T) {
	db := NewDB()
	ws := NewWriteSet()
	for i := 0; i < 100; i++ {
		var a types.Address
		a[19] = byte(i)
		ws.Balances[a] = u256.NewUint64(uint64(i))
	}
	if _, err := db.Commit(ws); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var a types.Address
				a[19] = byte(i)
				if got := db.Balance(a); got.Uint64() != uint64(i) {
					t.Errorf("balance(%d) = %d", i, got.Uint64())
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestOverlayReadThrough(t *testing.T) {
	db := NewDB()
	ws := NewWriteSet()
	ws.Balances[addrA] = u256.NewUint64(50)
	ws.SetStorage(addrA, slot1, u256.NewUint64(9))
	if _, err := db.Commit(ws); err != nil {
		t.Fatal(err)
	}
	o := NewOverlay(db)
	if got := o.Balance(addrA); got.Uint64() != 50 {
		t.Errorf("read-through balance = %d", got.Uint64())
	}
	if got := o.Storage(addrA, slot1); got.Uint64() != 9 {
		t.Errorf("read-through storage = %d", got.Uint64())
	}
	o.SetBalance(addrA, u256.NewUint64(75))
	if got := o.Balance(addrA); got.Uint64() != 75 {
		t.Errorf("overlay balance = %d", got.Uint64())
	}
	if got := db.Balance(addrA); got.Uint64() != 50 {
		t.Error("overlay write leaked into base")
	}
}

func TestOverlayJournalRevert(t *testing.T) {
	o := NewOverlay(NewDB())
	o.SetBalance(addrA, u256.NewUint64(10))
	o.SetNonce(addrA, 1)
	rev := o.Snapshot()
	o.SetBalance(addrA, u256.NewUint64(20))
	o.SetNonce(addrA, 2)
	o.SetStorage(addrA, slot1, u256.NewUint64(5))
	o.SetCode(addrB, []byte{1})
	o.RevertToSnapshot(rev)
	if got := o.Balance(addrA); got.Uint64() != 10 {
		t.Errorf("balance after revert = %d", got.Uint64())
	}
	if got := o.Nonce(addrA); got != 1 {
		t.Errorf("nonce after revert = %d", got)
	}
	if got := o.Storage(addrA, slot1); !got.IsZero() {
		t.Errorf("storage after revert = %s", got.Hex())
	}
	if o.Code(addrB) != nil {
		t.Error("code after revert should be nil")
	}
	ws := o.Changes()
	if ws.Len() != 2 { // balance + nonce of addrA only
		t.Errorf("write set size = %d, want 2", ws.Len())
	}
}

func TestOverlayNestedSnapshots(t *testing.T) {
	o := NewOverlay(NewDB())
	o.SetBalance(addrA, u256.NewUint64(1))
	s1 := o.Snapshot()
	o.SetBalance(addrA, u256.NewUint64(2))
	s2 := o.Snapshot()
	o.SetBalance(addrA, u256.NewUint64(3))
	o.RevertToSnapshot(s2)
	if got := o.Balance(addrA); got.Uint64() != 2 {
		t.Errorf("after inner revert = %d", got.Uint64())
	}
	o.RevertToSnapshot(s1)
	if got := o.Balance(addrA); got.Uint64() != 1 {
		t.Errorf("after outer revert = %d", got.Uint64())
	}
}

func TestOverlaySubBalance(t *testing.T) {
	o := NewOverlay(NewDB())
	o.SetBalance(addrA, u256.NewUint64(10))
	five := u256.NewUint64(5)
	if err := o.SubBalance(addrA, &five); err != nil {
		t.Fatal(err)
	}
	six := u256.NewUint64(6)
	if err := o.SubBalance(addrA, &six); !errors.Is(err, ErrInsufficientBalance) {
		t.Errorf("overdraft err = %v", err)
	}
	if got := o.Balance(addrA); got.Uint64() != 5 {
		t.Errorf("balance = %d", got.Uint64())
	}
	o.AddBalance(addrB, &five)
	if got := o.Balance(addrB); got.Uint64() != 5 {
		t.Errorf("AddBalance result = %d", got.Uint64())
	}
}

func TestWriteSetMerge(t *testing.T) {
	a := NewWriteSet()
	a.Balances[addrA] = u256.NewUint64(1)
	a.SetStorage(addrA, slot1, u256.NewUint64(10))
	b := NewWriteSet()
	b.Balances[addrA] = u256.NewUint64(2) // overrides
	b.Nonces[addrB] = 9
	b.SetStorage(addrA, slot2, u256.NewUint64(20))
	a.Merge(b)
	if v := a.Balances[addrA]; v.Uint64() != 2 {
		t.Error("merge should prefer other's values")
	}
	if s := a.Storage[addrA][slot2]; a.Nonces[addrB] != 9 || s.Uint64() != 20 {
		t.Error("merge missed fields")
	}
	if a.Len() != 4 {
		t.Errorf("Len = %d, want 4", a.Len())
	}
}

func TestOverlayChangesCommitRoundTrip(t *testing.T) {
	db := NewDB()
	o := NewOverlay(db)
	o.SetBalance(addrA, u256.NewUint64(77))
	o.SetStorage(addrB, slot1, u256.NewUint64(88))
	o.SetCode(addrB, []byte{0xfe})
	if _, err := db.Commit(o.Changes()); err != nil {
		t.Fatal(err)
	}
	if got := db.Balance(addrA); got.Uint64() != 77 {
		t.Errorf("balance = %d", got.Uint64())
	}
	if got := db.Storage(addrB, slot1); got.Uint64() != 88 {
		t.Errorf("storage = %d", got.Uint64())
	}
	if got := db.Code(addrB); !bytes.Equal(got, []byte{0xfe}) {
		t.Errorf("code = %x", got)
	}
}

// TestCommitWithParallelRootsMatch: committing the same write set with the
// storage tries hashed serially and with a bounded worker group must
// produce byte-identical roots — the account trie is always folded in
// sorted address order, and the node store is content-addressed.
func TestCommitWithParallelRootsMatch(t *testing.T) {
	buildWS := func(rng *rand.Rand) *WriteSet {
		ws := NewWriteSet()
		for a := 0; a < 40; a++ {
			var addr types.Address
			addr[0] = 0xfa
			addr[19] = byte(a)
			ws.Balances[addr] = u256.NewUint64(uint64(rng.Intn(1_000_000)))
			ws.Nonces[addr] = uint64(rng.Intn(50))
			for s := 0; s < 25; s++ {
				var slot types.Hash
				slot[31] = byte(s)
				slot[30] = byte(a)
				// Some zero values exercise the delete path.
				ws.SetStorage(addr, slot, u256.NewUint64(uint64(rng.Intn(5)*1000)))
			}
		}
		return ws
	}

	for _, workers := range []int{2, 4, 8} {
		rng := rand.New(rand.NewSource(99))
		ws := buildWS(rng)
		dbSerial := NewDB()
		rootSerial, err := dbSerial.CommitWith(ws, 1)
		if err != nil {
			t.Fatal(err)
		}
		dbPar := NewDB()
		rootPar, err := dbPar.CommitWith(ws, workers)
		if err != nil {
			t.Fatal(err)
		}
		if rootPar != rootSerial {
			t.Fatalf("workers=%d: parallel commit root %s != serial %s", workers, rootPar, rootSerial)
		}
		// Second block on top: incremental commit must also agree.
		rng2 := rand.New(rand.NewSource(123))
		ws2 := buildWS(rng2)
		r2s, err := dbSerial.CommitWith(ws2, 1)
		if err != nil {
			t.Fatal(err)
		}
		r2p, err := dbPar.CommitWith(ws2, workers)
		if err != nil {
			t.Fatal(err)
		}
		if r2p != r2s {
			t.Fatalf("workers=%d: second-block roots diverge: %s != %s", workers, r2p, r2s)
		}
	}
}
