package state

import (
	"errors"
	"testing"

	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// buildHistory commits three blocks mutating the same accounts and returns
// the DB plus the roots after each block.
func buildHistory(t *testing.T) (*DB, []types.Hash) {
	t.Helper()
	db := NewDB()
	var roots []types.Hash
	for i := uint64(1); i <= 3; i++ {
		ws := NewWriteSet()
		ws.Balances[addrA] = u256.NewUint64(100 * i)
		ws.Nonces[addrA] = i
		ws.SetStorage(addrB, slot1, u256.NewUint64(7*i))
		if i == 2 {
			ws.Codes[addrB] = []byte{0xc0, 0xde}
		}
		if i == 3 {
			ws.SetStorage(addrB, slot1, u256.Zero) // delete in block 3
		}
		root, err := db.Commit(ws)
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, root)
	}
	return db, roots
}

func TestStateAtReadsPastValues(t *testing.T) {
	db, roots := buildHistory(t)
	for i, root := range roots {
		h, err := db.StateAt(root)
		if err != nil {
			t.Fatal(err)
		}
		wantBal := uint64(100 * (i + 1))
		if got := h.Balance(addrA); got.Uint64() != wantBal {
			t.Errorf("block %d balance = %d, want %d", i+1, got.Uint64(), wantBal)
		}
		if got := h.Nonce(addrA); got != uint64(i+1) {
			t.Errorf("block %d nonce = %d", i+1, got)
		}
		wantSlot := uint64(7 * (i + 1))
		if i == 2 {
			wantSlot = 0 // deleted in block 3
		}
		if got := h.Storage(addrB, slot1); got.Uint64() != wantSlot {
			t.Errorf("block %d slot = %d, want %d", i+1, got.Uint64(), wantSlot)
		}
	}
}

func TestStateAtCode(t *testing.T) {
	db, roots := buildHistory(t)
	h1, err := db.StateAt(roots[0])
	if err != nil {
		t.Fatal(err)
	}
	if h1.Code(addrB) != nil {
		t.Error("code should not exist at block 1")
	}
	h2, err := db.StateAt(roots[1])
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.Code(addrB); len(got) != 2 || got[0] != 0xc0 {
		t.Errorf("code at block 2 = %x", got)
	}
}

func TestStateAtUnknownRoot(t *testing.T) {
	db, _ := buildHistory(t)
	var bogus types.Hash
	bogus[0] = 0xba
	if _, err := db.StateAt(bogus); !errors.Is(err, ErrUnknownRoot) {
		t.Errorf("err = %v, want ErrUnknownRoot", err)
	}
}

func TestStateAtAbsentAccount(t *testing.T) {
	db, roots := buildHistory(t)
	h, err := db.StateAt(roots[2])
	if err != nil {
		t.Fatal(err)
	}
	ghost := types.HexToAddress("0x9999999999999999999999999999999999999999")
	if h.Exists(ghost) {
		t.Error("ghost account exists")
	}
	if got := h.Balance(ghost); !got.IsZero() {
		t.Errorf("ghost balance = %d", got.Uint64())
	}
	if got := h.Nonce(ghost); got != 0 {
		t.Errorf("ghost nonce = %d", got)
	}
}

func TestStateAtMatchesLatestFlatView(t *testing.T) {
	db, roots := buildHistory(t)
	h, err := db.StateAt(roots[len(roots)-1])
	if err != nil {
		t.Fatal(err)
	}
	if got, want := h.Balance(addrA), db.Balance(addrA); !got.Eq(&want) {
		t.Errorf("historical latest %s != flat %s", got.Hex(), want.Hex())
	}
	if got, want := h.Storage(addrB, slot1), db.Storage(addrB, slot1); !got.Eq(&want) {
		t.Errorf("historical storage %s != flat %s", got.Hex(), want.Hex())
	}
	if h.(*Historical).Root() != db.Root() {
		t.Error("root mismatch")
	}
}

func TestStateAtGenesisEmpty(t *testing.T) {
	db := NewDB()
	h, err := db.StateAt(db.Root())
	if err != nil {
		t.Fatal(err)
	}
	if h.Exists(addrA) {
		t.Error("account exists at empty genesis")
	}
}
