package state

import (
	"errors"

	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// ErrInsufficientBalance reports a debit exceeding the account balance.
var ErrInsufficientBalance = errors.New("state: insufficient balance")

type storageKey struct {
	addr types.Address
	key  types.Hash
}

// Overlay is a mutable state view layered over a Reader base. All writes
// stay in the overlay until extracted with Changes. Snapshot/RevertToSnapshot
// give the nested rollback needed for transaction and call-frame reverts.
//
// An Overlay is not safe for concurrent use; each executor thread owns one.
type Overlay struct {
	base     Reader
	balances map[types.Address]u256.Int
	nonces   map[types.Address]uint64
	codes    map[types.Address][]byte
	storage  map[storageKey]u256.Int
	journal  []func()
}

var _ Reader = (*Overlay)(nil)

// NewOverlay returns an empty overlay over base.
func NewOverlay(base Reader) *Overlay {
	return &Overlay{
		base:     base,
		balances: make(map[types.Address]u256.Int),
		nonces:   make(map[types.Address]uint64),
		codes:    make(map[types.Address][]byte),
		storage:  make(map[storageKey]u256.Int),
	}
}

// Balance implements Reader.
func (o *Overlay) Balance(addr types.Address) u256.Int {
	if v, ok := o.balances[addr]; ok {
		return v
	}
	return o.base.Balance(addr)
}

// SetBalance overwrites the account balance.
func (o *Overlay) SetBalance(addr types.Address, v u256.Int) {
	prev, had := o.balances[addr]
	o.journal = append(o.journal, func() {
		if had {
			o.balances[addr] = prev
		} else {
			delete(o.balances, addr)
		}
	})
	o.balances[addr] = v
}

// AddBalance credits the account.
func (o *Overlay) AddBalance(addr types.Address, v *u256.Int) {
	cur := o.Balance(addr)
	var next u256.Int
	next.Add(&cur, v)
	o.SetBalance(addr, next)
}

// SubBalance debits the account, failing if funds are insufficient.
func (o *Overlay) SubBalance(addr types.Address, v *u256.Int) error {
	cur := o.Balance(addr)
	var next u256.Int
	if next.SubUnderflow(&cur, v) {
		return ErrInsufficientBalance
	}
	o.SetBalance(addr, next)
	return nil
}

// Nonce implements Reader.
func (o *Overlay) Nonce(addr types.Address) uint64 {
	if v, ok := o.nonces[addr]; ok {
		return v
	}
	return o.base.Nonce(addr)
}

// SetNonce overwrites the account nonce.
func (o *Overlay) SetNonce(addr types.Address, v uint64) {
	prev, had := o.nonces[addr]
	o.journal = append(o.journal, func() {
		if had {
			o.nonces[addr] = prev
		} else {
			delete(o.nonces, addr)
		}
	})
	o.nonces[addr] = v
}

// Code implements Reader.
func (o *Overlay) Code(addr types.Address) []byte {
	if c, ok := o.codes[addr]; ok {
		return c
	}
	return o.base.Code(addr)
}

// SetCode installs contract code at addr.
func (o *Overlay) SetCode(addr types.Address, code []byte) {
	prev, had := o.codes[addr]
	o.journal = append(o.journal, func() {
		if had {
			o.codes[addr] = prev
		} else {
			delete(o.codes, addr)
		}
	})
	o.codes[addr] = code
}

// Storage implements Reader.
func (o *Overlay) Storage(addr types.Address, key types.Hash) u256.Int {
	if v, ok := o.storage[storageKey{addr, key}]; ok {
		return v
	}
	return o.base.Storage(addr, key)
}

// SetStorage writes one storage slot.
func (o *Overlay) SetStorage(addr types.Address, key types.Hash, v u256.Int) {
	sk := storageKey{addr, key}
	prev, had := o.storage[sk]
	o.journal = append(o.journal, func() {
		if had {
			o.storage[sk] = prev
		} else {
			delete(o.storage, sk)
		}
	})
	o.storage[sk] = v
}

// Exists implements Reader.
func (o *Overlay) Exists(addr types.Address) bool {
	if _, ok := o.balances[addr]; ok {
		return true
	}
	if _, ok := o.nonces[addr]; ok {
		return true
	}
	if _, ok := o.codes[addr]; ok {
		return true
	}
	return o.base.Exists(addr)
}

// Snapshot returns a revision token for RevertToSnapshot.
func (o *Overlay) Snapshot() int { return len(o.journal) }

// RevertToSnapshot undoes every write made after the token was taken.
func (o *Overlay) RevertToSnapshot(rev int) {
	for i := len(o.journal) - 1; i >= rev; i-- {
		o.journal[i]()
	}
	o.journal = o.journal[:rev]
}

// Changes extracts the net write set of the overlay.
func (o *Overlay) Changes() *WriteSet {
	ws := NewWriteSet()
	for a, v := range o.balances {
		ws.Balances[a] = v
	}
	for a, v := range o.nonces {
		ws.Nonces[a] = v
	}
	for a, c := range o.codes {
		ws.Codes[a] = c
	}
	for sk, v := range o.storage {
		ws.SetStorage(sk.addr, sk.key, v)
	}
	return ws
}

// Apply folds a write set into the overlay (journaled like individual
// writes). Used by executors that merge per-transaction effects.
func (o *Overlay) Apply(ws *WriteSet) {
	for a, v := range ws.Balances {
		o.SetBalance(a, v)
	}
	for a, v := range ws.Nonces {
		o.SetNonce(a, v)
	}
	for a, c := range ws.Codes {
		o.SetCode(a, c)
	}
	for a, m := range ws.Storage {
		for k, v := range m {
			o.SetStorage(a, k, v)
		}
	}
}
