package kvdisk

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestPutGetDelete(t *testing.T) {
	s, err := Open(t.TempDir(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok, _ := s.Get([]byte("missing")); ok {
		t.Fatal("missing key reported present")
	}
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Read before any flush: served from the write buffer.
	v, ok, err := s.Get([]byte("k1"))
	if err != nil || !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("buffered get = %q ok=%v err=%v", v, ok, err)
	}
	if err := s.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Read after flush: served from the file.
	v, ok, err = s.Get([]byte("k1"))
	if err != nil || !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("flushed get = %q ok=%v err=%v", v, ok, err)
	}
	if err := s.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("k1")); ok {
		t.Fatal("deleted key reported present")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d after delete", s.Len())
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		if err := s.Put(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite some, delete some — the reopened index must reflect the
	// latest record for each key.
	for i := 0; i < n; i += 3 {
		if err := s.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte("updated")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i += 5 {
		if err := s.Delete([]byte(fmt.Sprintf("key-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		v, ok, err := r.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		deleted := i%5 == 1
		if deleted {
			if ok {
				t.Errorf("key %d: present after delete+reopen", i)
			}
			continue
		}
		want := fmt.Sprintf("val-%d", i)
		if i%3 == 0 {
			want = "updated"
		}
		if !ok || string(v) != want {
			t.Errorf("key %d: got %q ok=%v, want %q", i, v, ok, want)
		}
	}
}

func TestLargeValuesCrossFlushThreshold(t *testing.T) {
	s, err := Open(t.TempDir(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	big := bytes.Repeat([]byte{0xab}, flushThreshold/2+1)
	for i := 0; i < 4; i++ {
		if err := s.Put([]byte{byte(i)}, big); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		v, ok, err := s.Get([]byte{byte(i)})
		if err != nil || !ok || !bytes.Equal(v, big) {
			t.Fatalf("big value %d: ok=%v err=%v len=%d", i, ok, err, len(v))
		}
	}
}

func TestFaultHooks(t *testing.T) {
	s, err := Open(t.TempDir(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected read fault")
	fails := 2
	s.SetFaultHooks(func(key []byte) error {
		if fails > 0 {
			fails--
			return injected
		}
		return nil
	}, func() time.Duration { return time.Millisecond })

	if _, _, err := s.Get([]byte("k")); !errors.Is(err, injected) {
		t.Fatalf("first get err = %v, want injected", err)
	}
	if _, _, err := s.Get([]byte("k")); !errors.Is(err, injected) {
		t.Fatalf("second get err = %v, want injected", err)
	}
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("post-fault get = %q ok=%v err=%v", v, ok, err)
	}

	start := time.Now()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("flush delay hook not applied")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s, err := Open(t.TempDir(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err == nil {
		t.Fatal("put on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close errored")
	}
}
