package kvdisk

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func TestPutGetDelete(t *testing.T) {
	s, err := Open(t.TempDir(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok, _ := s.Get([]byte("missing")); ok {
		t.Fatal("missing key reported present")
	}
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Read before any flush: served from the write buffer.
	v, ok, err := s.Get([]byte("k1"))
	if err != nil || !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("buffered get = %q ok=%v err=%v", v, ok, err)
	}
	if err := s.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Read after flush: served from the file.
	v, ok, err = s.Get([]byte("k1"))
	if err != nil || !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("flushed get = %q ok=%v err=%v", v, ok, err)
	}
	if err := s.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("k1")); ok {
		t.Fatal("deleted key reported present")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d after delete", s.Len())
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		if err := s.Put(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite some, delete some — the reopened index must reflect the
	// latest record for each key.
	for i := 0; i < n; i += 3 {
		if err := s.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte("updated")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i += 5 {
		if err := s.Delete([]byte(fmt.Sprintf("key-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		v, ok, err := r.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		deleted := i%5 == 1
		if deleted {
			if ok {
				t.Errorf("key %d: present after delete+reopen", i)
			}
			continue
		}
		want := fmt.Sprintf("val-%d", i)
		if i%3 == 0 {
			want = "updated"
		}
		if !ok || string(v) != want {
			t.Errorf("key %d: got %q ok=%v, want %q", i, v, ok, want)
		}
	}
}

func TestLargeValuesCrossFlushThreshold(t *testing.T) {
	s, err := Open(t.TempDir(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	big := bytes.Repeat([]byte{0xab}, flushThreshold/2+1)
	for i := 0; i < 4; i++ {
		if err := s.Put([]byte{byte(i)}, big); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		v, ok, err := s.Get([]byte{byte(i)})
		if err != nil || !ok || !bytes.Equal(v, big) {
			t.Fatalf("big value %d: ok=%v err=%v len=%d", i, ok, err, len(v))
		}
	}
}

func TestFaultHooks(t *testing.T) {
	s, err := Open(t.TempDir(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected read fault")
	fails := 2
	s.SetFaultHooks(func(key []byte) error {
		if fails > 0 {
			fails--
			return injected
		}
		return nil
	}, func() time.Duration { return time.Millisecond })

	if _, _, err := s.Get([]byte("k")); !errors.Is(err, injected) {
		t.Fatalf("first get err = %v, want injected", err)
	}
	if _, _, err := s.Get([]byte("k")); !errors.Is(err, injected) {
		t.Fatalf("second get err = %v, want injected", err)
	}
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("post-fault get = %q ok=%v err=%v", v, ok, err)
	}

	start := time.Now()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("flush delay hook not applied")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s, err := Open(t.TempDir(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err == nil {
		t.Fatal("put on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close errored")
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	cleanSize := s.SizeOnDisk()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn append: garbage bytes at the tail.
	f, err := os.OpenFile(s.Path(), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := bytes.Repeat([]byte{0xff, 0x13, 0x37}, 40)
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, rec, err := OpenRecover(dir, "kv")
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer r.Close()
	if !rec.TornTail {
		t.Error("torn tail not detected")
	}
	if rec.TornAt != cleanSize {
		t.Errorf("TornAt = %d, want %d", rec.TornAt, cleanSize)
	}
	if rec.RolledBackBytes != int64(len(garbage)) {
		t.Errorf("RolledBackBytes = %d, want %d", rec.RolledBackBytes, len(garbage))
	}
	if r.SizeOnDisk() != cleanSize {
		t.Errorf("size after recovery = %d, want %d", r.SizeOnDisk(), cleanSize)
	}
	// Every record before the tear must survive.
	for i := 0; i < 100; i++ {
		v, ok, err := r.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %d after recovery: %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

func TestGarbageMidLogDetected(t *testing.T) {
	// Garbage in the middle of the log (not just the tail) must still be
	// detected — recovery keeps the valid prefix and reports the tear, and
	// must NOT silently treat the decode error as clean EOF.
	dir := t.TempDir()
	s, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte(fmt.Sprintf("a-%02d", i)), []byte("before")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	prefixSize := s.SizeOnDisk()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(s.Path(), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage followed by what would have been valid records — everything
	// from the corruption point on is untrustworthy and must be dropped.
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Close()
	s2, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s2.Put([]byte(fmt.Sprintf("b-%02d", i)), []byte("after"))
	}
	// Bypass recovery-on-open by writing via a raw append: reopen s2's file
	// handle wrote past the garbage? No — Open already truncated the
	// garbage. Instead append valid-looking records after fresh garbage.
	s2.Close()

	f, err = os.OpenFile(s.Path(), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0xff, 0xff})
	f.Write(bytes.Repeat([]byte("not a record"), 10))
	f.Close()

	r, rec, err := OpenRecover(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !rec.TornTail {
		t.Error("mid-log garbage not reported as torn")
	}
	if rec.RolledBackBytes == 0 {
		t.Error("rolled-back bytes not accounted")
	}
	if got := r.Len(); got != 60 {
		t.Errorf("live keys after recovery = %d, want 60", got)
	}
	_ = prefixSize
}

func TestCommitMarkersBoundRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("k1"), []byte("v1"))
	if err := s.Commit([]byte("meta-1")); err != nil {
		t.Fatal(err)
	}
	markerSize := s.SizeOnDisk()
	// Records after the last marker are fully flushed and valid — but a
	// reopen must still roll them back to the marker boundary.
	s.Put([]byte("k2"), []byte("v2"))
	s.Put([]byte("k3"), []byte("v3"))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	postSize := s.SizeOnDisk()
	if err := s.CrashClose(); err != nil {
		t.Fatal(err)
	}

	r, rec, err := OpenRecover(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rec.TornTail {
		t.Error("clean post-marker records misreported as torn")
	}
	if rec.Markers != 1 {
		t.Errorf("markers = %d, want 1", rec.Markers)
	}
	if string(rec.LastMeta) != "meta-1" {
		t.Errorf("last meta = %q", rec.LastMeta)
	}
	if rec.RolledBackBytes != postSize-markerSize {
		t.Errorf("RolledBackBytes = %d, want %d", rec.RolledBackBytes, postSize-markerSize)
	}
	if rec.RolledBackRecords != 2 {
		t.Errorf("RolledBackRecords = %d, want 2", rec.RolledBackRecords)
	}
	if _, ok, _ := r.Get([]byte("k1")); !ok {
		t.Error("committed key lost")
	}
	if _, ok, _ := r.Get([]byte("k2")); ok {
		t.Error("uncommitted key survived recovery")
	}
}

func TestRollbackToMarker(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err := s.Commit([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	metas := s.MarkerMetas()
	if len(metas) != 3 || string(metas[2]) != "m2" {
		t.Fatalf("marker metas = %v", metas)
	}
	rec, err := s.RollbackToMarker(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Markers != 1 || string(rec.LastMeta) != "m0" {
		t.Errorf("after rollback: markers=%d meta=%q", rec.Markers, rec.LastMeta)
	}
	if rec.RolledBackRecords != 4 { // k1, m1, k2, m2
		t.Errorf("RolledBackRecords = %d, want 4", rec.RolledBackRecords)
	}
	if _, ok, _ := s.Get([]byte("k0")); !ok {
		t.Error("k0 lost by rollback")
	}
	if _, ok, _ := s.Get([]byte("k2")); ok {
		t.Error("k2 survived rollback")
	}
	// The store stays writable after rollback.
	if err := s.Put([]byte("k9"), []byte("v9")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit([]byte("m9")); err != nil {
		t.Fatal(err)
	}
	if got := s.MarkerMetas(); len(got) != 2 || string(got[1]) != "m9" {
		t.Errorf("markers after re-commit = %v", got)
	}
}

func TestNoSyncCrashDropsUncommitted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("durable"), []byte("v"))
	if err := s.Commit([]byte("c1")); err != nil {
		t.Fatal(err)
	}
	s.SetNoSync(true)
	s.Put([]byte("lost"), []byte("v"))
	if err := s.Commit([]byte("c2")); err != nil {
		t.Fatal(err) // suppressed by noSync: nothing reaches the file
	}
	// Reads still see the buffered write pre-crash.
	if _, ok, _ := s.Get([]byte("lost")); !ok {
		t.Fatal("buffered key invisible before crash")
	}
	if err := s.CrashClose(); err != nil {
		t.Fatal(err)
	}

	r, rec, err := OpenRecover(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rec.Markers != 1 || string(rec.LastMeta) != "c1" {
		t.Errorf("recovered to markers=%d meta=%q, want 1/c1", rec.Markers, rec.LastMeta)
	}
	if _, ok, _ := r.Get([]byte("durable")); !ok {
		t.Error("committed key lost")
	}
	if _, ok, _ := r.Get([]byte("lost")); ok {
		t.Error("un-synced key survived crash")
	}
}

func TestCloseFlushesAndFsyncs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("k"), []byte("v")) // stays in the write buffer
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Fsyncs == 0 {
		t.Error("close did not fsync")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close errored")
	}
	r, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok, _ := r.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("buffered record lost across close: %q ok=%v", v, ok)
	}
}

func TestRangeSortedPrefix(t *testing.T) {
	s, err := Open(t.TempDir(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put([]byte("b2"), []byte("x"))
	s.Put([]byte("a3"), []byte("v3"))
	s.Put([]byte("a1"), []byte("v1"))
	s.Flush()
	s.Put([]byte("a2"), []byte("v2")) // still buffered
	var keys []string
	if err := s.Range([]byte("a"), func(k, v []byte) error {
		keys = append(keys, string(k)+"="+string(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1=v1", "a2=v2", "a3=v3"}
	if len(keys) != 3 || keys[0] != want[0] || keys[1] != want[1] || keys[2] != want[2] {
		t.Errorf("range = %v, want %v", keys, want)
	}
}

func TestConcurrentPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := []byte(fmt.Sprintf("w%d-%04d", w, i))
				val := []byte(fmt.Sprintf("val-%d-%d", w, i))
				if err := s.Put(key, val); err != nil {
					t.Error(err)
					return
				}
				if v, ok, err := s.Get(key); err != nil || !ok || !bytes.Equal(v, val) {
					t.Errorf("readback w%d i%d: %q ok=%v err=%v", w, i, v, ok, err)
					return
				}
				if i%50 == 0 {
					// Interleave scans and deletes with writers.
					s.Get([]byte(fmt.Sprintf("w%d-%04d", (w+1)%workers, i)))
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Commit([]byte("done")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, rec, err := OpenRecover(dir, "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rec.TornTail {
		t.Error("clean concurrent log misreported as torn")
	}
	if r.Len() != workers*perWorker {
		t.Errorf("live keys = %d, want %d", r.Len(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i += 37 {
			key := []byte(fmt.Sprintf("w%d-%04d", w, i))
			v, ok, err := r.Get(key)
			if err != nil || !ok || string(v) != fmt.Sprintf("val-%d-%d", w, i) {
				t.Fatalf("after reopen w%d i%d: %q ok=%v err=%v", w, i, v, ok, err)
			}
		}
	}
}

func TestStatsCounters(t *testing.T) {
	s, err := Open(t.TempDir(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	s.Delete([]byte("a"))
	s.Commit([]byte("m"))
	st := s.Stats()
	if st.Puts != 2 || st.Deletes != 1 || st.Commits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Fsyncs == 0 || st.Flushes == 0 || st.FlushedBytes == 0 {
		t.Errorf("durability counters not advancing: %+v", st)
	}
}
