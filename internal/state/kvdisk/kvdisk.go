// Package kvdisk is a minimal log-structured key-value file store: records
// append to a single log, an in-memory index maps each key to its latest
// record, and reopening rebuilds the index with one sequential scan. It is
// the persistence substrate of the disk-backed state backend — account and
// slot records plus trie nodes live here, so state far larger than RAM-
// resident maps fits in bounded memory (only the index, ~tens of bytes per
// live key, stays resident).
//
// The store favors simplicity over write-amplification tuning: there is no
// background compaction (overwritten records leak log space until the file
// is rebuilt), which is the right trade for soak benchmarks and reproducible
// experiments. All operations are safe for concurrent use.
package kvdisk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// loc addresses one value inside the log.
type loc struct {
	off int64 // offset of the value bytes
	len int   // value length
}

// Store is one append-only keyed log.
type Store struct {
	mu      sync.RWMutex
	f       *os.File
	path    string
	fileOff int64  // bytes durably in the file
	buf     []byte // appended records not yet flushed
	idx     map[string]loc
	puts    int64
	closed  bool

	// Fault hooks (chaos testing): readFault may fail a Get with a
	// transient error; flushDelay stalls Flush. Both nil in production.
	// They are plain callbacks — the fault.Injector wiring lives with the
	// chaos harness — so kvdisk stays dependency-free.
	readFault  func(key []byte) error
	flushDelay func() time.Duration
}

// flushThreshold bounds the in-memory write buffer.
const flushThreshold = 1 << 20

// Open opens (creating if needed) the store at dir/name.log and rebuilds the
// index from the log.
func Open(dir, name string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvdisk: mkdir %s: %w", dir, err)
	}
	path := filepath.Join(dir, name+".log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvdisk: open %s: %w", path, err)
	}
	s := &Store{f: f, path: path, idx: make(map[string]loc)}
	if err := s.rebuild(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// rebuild scans the log sequentially, reconstructing the latest-record index.
func (s *Store) rebuild() error {
	r := bufio.NewReaderSize(s.f, 1<<20)
	var off int64
	for {
		klen, n1, err := readUvarint(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("kvdisk: corrupt log %s at %d: %w", s.path, off, err)
		}
		vfield, n2, err := readUvarint(r)
		if err != nil {
			return fmt.Errorf("kvdisk: corrupt log %s at %d: %w", s.path, off, err)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(r, key); err != nil {
			return fmt.Errorf("kvdisk: corrupt log %s at %d: %w", s.path, off, err)
		}
		off += int64(n1) + int64(n2) + int64(klen)
		if vfield == 0 { // tombstone
			delete(s.idx, string(key))
			continue
		}
		vlen := int(vfield - 1)
		if _, err := r.Discard(vlen); err != nil {
			return fmt.Errorf("kvdisk: corrupt log %s at %d: %w", s.path, off, err)
		}
		s.idx[string(key)] = loc{off: off, len: vlen}
		off += int64(vlen)
	}
	s.fileOff = off
	return nil
}

// readUvarint reads one uvarint, returning the value and its encoded width.
func readUvarint(r io.ByteReader) (uint64, int, error) {
	var v uint64
	var shift, n int
	for {
		b, err := r.ReadByte()
		if err != nil {
			if n > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, n, err
		}
		n++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, n, nil
		}
		shift += 7
	}
}

// SetFaultHooks installs chaos-testing hooks: read fires before every Get
// and may return a transient error; flush returns an artificial stall for
// every Flush. Nil disables a hook.
func (s *Store) SetFaultHooks(read func(key []byte) error, flush func() time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readFault = read
	s.flushDelay = flush
}

// Get returns the latest value for key. The boolean reports presence; the
// error is I/O (or injected) failure, on which the caller may retry.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	if s.readFault != nil {
		if err := s.readFault(key); err != nil {
			s.mu.RUnlock()
			return nil, false, err
		}
	}
	l, ok := s.idx[string(key)]
	if !ok {
		s.mu.RUnlock()
		return nil, false, nil
	}
	val := make([]byte, l.len)
	if l.off >= s.fileOff {
		// Still in the write buffer.
		copy(val, s.buf[l.off-s.fileOff:])
		s.mu.RUnlock()
		return val, true, nil
	}
	s.mu.RUnlock()
	// ReadAt is safe for concurrent use; committed records never move.
	if _, err := s.f.ReadAt(val, l.off); err != nil {
		return nil, false, fmt.Errorf("kvdisk: read %s: %w", s.path, err)
	}
	return val, true, nil
}

// Put appends key -> val and updates the index.
func (s *Store) Put(key, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("kvdisk: put on closed store %s", s.path)
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(val))+1)
	s.buf = append(s.buf, hdr[:n]...)
	s.buf = append(s.buf, key...)
	valOff := s.fileOff + int64(len(s.buf))
	s.buf = append(s.buf, val...)
	s.idx[string(key)] = loc{off: valOff, len: len(val)}
	s.puts++
	if len(s.buf) >= flushThreshold {
		return s.flushLocked()
	}
	return nil
}

// Delete appends a tombstone for key.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("kvdisk: delete on closed store %s", s.path)
	}
	if _, ok := s.idx[string(key)]; !ok {
		return nil
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], 0)
	s.buf = append(s.buf, hdr[:n]...)
	s.buf = append(s.buf, key...)
	delete(s.idx, string(key))
	if len(s.buf) >= flushThreshold {
		return s.flushLocked()
	}
	return nil
}

// Flush writes the buffered records to the file.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.flushDelay != nil {
		if d := s.flushDelay(); d > 0 {
			time.Sleep(d)
		}
	}
	if len(s.buf) == 0 {
		return nil
	}
	if _, err := s.f.WriteAt(s.buf, s.fileOff); err != nil {
		return fmt.Errorf("kvdisk: flush %s: %w", s.path, err)
	}
	s.fileOff += int64(len(s.buf))
	s.buf = s.buf[:0]
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.idx)
}

// SizeOnDisk returns the log size in bytes, including unflushed records.
func (s *Store) SizeOnDisk() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fileOff + int64(len(s.buf))
}

// Close flushes and closes the log file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.flushLocked(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
