// Package kvdisk is a minimal log-structured key-value file store: records
// append to a single log, an in-memory index maps each key to its latest
// record, and reopening rebuilds the index with one sequential scan. It is
// the persistence substrate of the disk-backed state backend — account and
// slot records plus trie nodes live here, so state far larger than RAM-
// resident maps fits in bounded memory (only the index, ~tens of bytes per
// live key, stays resident).
//
// The store is crash-consistent. Every record carries a CRC32C trailer, so a
// torn or corrupted tail is detected rather than decoded as garbage. Callers
// delimit atomic batches with Commit, which appends a checksummed commit
// marker, flushes, and fsyncs the log — the marker is the durability point.
// Reopening recovers to the last valid commit marker: trailing records past
// it (whether a cleanly-written partial batch or a torn tail) are truncated
// away and reported as rolled-back bytes/records, never silently swallowed.
// Logs that carry no markers (plain Put/Close usage) recover to the end of
// the valid record prefix instead.
//
// The store favors simplicity over write-amplification tuning: there is no
// background compaction (overwritten records leak log space until the file
// is rebuilt), which is the right trade for soak benchmarks and reproducible
// experiments. All operations are safe for concurrent use.
package kvdisk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Record framing: uvarint(kfield) uvarint(vfield) key val crc32c(4B LE).
// kfield = klen+1 for keyed records, 0 for commit markers (whose payload
// rides in val). vfield = vlen+1 for values, 0 for tombstones. The CRC
// covers every preceding byte of the record.

// loc addresses one value inside the log.
type loc struct {
	off int64 // offset of the value bytes
	len int   // value length
}

// markerLoc is one commit marker found in (or appended to) the log.
type markerLoc struct {
	end  int64 // offset just past the marker record
	meta []byte
	recs int // records in the log up to and including this marker
}

// crcTable is the Castagnoli polynomial — hardware-accelerated on amd64 and
// arm64, and the conventional choice for storage checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Sanity bounds on decoded lengths: a corrupted header must not drive a
// multi-gigabyte allocation before the CRC check can reject the record.
const (
	maxKeyLen = 1 << 20
	maxValLen = 1 << 30
)

// Store is one append-only keyed log.
type Store struct {
	mu      sync.RWMutex
	f       *os.File
	path    string
	fileOff int64  // bytes durably in the file
	buf     []byte // appended records not yet flushed
	idx     map[string]loc
	markers []markerLoc
	records int // total records in the log (including buffered)
	closed  bool

	// noSync simulates a crash window: while set, flushes and fsyncs are
	// suppressed so appended records exist only in the write buffer, exactly
	// the state a process death before Sync would leave behind. Torture
	// harness use only.
	noSync bool

	// Durability counters (see Stats).
	puts, deletes   int64
	flushes, fsyncs int64
	commits         int64
	flushedBytes    int64
	syncNs          int64

	recovery Recovery

	// Fault hooks (chaos testing): readFault may fail a Get with a
	// transient error; flushDelay stalls Flush. Both nil in production.
	// They are plain callbacks — the fault.Injector wiring lives with the
	// chaos harness — so kvdisk stays dependency-free.
	readFault  func(key []byte) error
	flushDelay func() time.Duration
}

// Recovery reports what a reopen (or explicit rollback) did to the log.
type Recovery struct {
	// TornTail reports that the scan hit a torn or corrupt record — a
	// partial append or flipped bytes — rather than a clean end-of-file.
	TornTail bool
	// TornAt is the offset of the first invalid record when TornTail is set.
	TornAt int64
	// RolledBackBytes is how many trailing bytes were truncated away to
	// restore the log to its last durable point.
	RolledBackBytes int64
	// RolledBackRecords counts the fully-valid records among the truncated
	// bytes (a torn partial record contributes bytes but no record).
	RolledBackRecords int
	// Markers is the number of valid commit markers in the recovered log.
	Markers int
	// LastMeta is the payload of the commit marker the log recovered to
	// (nil when the log carries no markers).
	LastMeta []byte
}

// Stats is a point-in-time snapshot of the store's durability counters.
type Stats struct {
	Puts, Deletes int64
	// Flushes counts buffer write-downs; FlushedBytes the bytes written.
	Flushes      int64
	FlushedBytes int64
	// Fsyncs counts file syncs; SyncNs their cumulative latency.
	Fsyncs int64
	SyncNs int64
	// Commits counts commit markers appended.
	Commits int64
}

// flushThreshold bounds the in-memory write buffer.
const flushThreshold = 1 << 20

// Open opens (creating if needed) the store at dir/name.log, recovering to
// the last durable point and rebuilding the index. Recovery details are
// available via Recovery(); use OpenRecover to get them directly.
func Open(dir, name string) (*Store, error) {
	s, _, err := OpenRecover(dir, name)
	return s, err
}

// OpenRecover is Open returning what recovery had to do: whether the tail
// was torn, and how many bytes/records were rolled back to reach the last
// valid commit marker (or the end of the valid prefix for marker-less logs).
func OpenRecover(dir, name string) (*Store, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("kvdisk: mkdir %s: %w", dir, err)
	}
	path := filepath.Join(dir, name+".log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("kvdisk: open %s: %w", path, err)
	}
	s := &Store{f: f, path: path, idx: make(map[string]loc)}
	rec, err := s.recoverLog()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	s.recovery = *rec
	return s, rec, nil
}

// Path returns the log file's path.
func (s *Store) Path() string { return s.path }

// Recovery returns what the opening recovery did (zero value for a clean
// open of a fresh or marker-aligned log).
func (s *Store) Recovery() Recovery {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recovery
}

// scanResult is one sequential validation pass over the log file.
type scanResult struct {
	validEnd       int64 // offset just past the last fully-valid record
	torn           bool  // scan ended on a torn/corrupt record, not clean EOF
	tornAt         int64
	records        int
	recsPastMarker int // valid records after the last marker
	markers        []markerLoc
	idx            map[string]loc
}

// scanLog validates the file record by record from the start: every record's
// CRC must check out. The scan stops at the first invalid record (torn) or
// at a clean EOF, returning the index and markers as of the stop point.
func (s *Store) scanLog() (*scanResult, error) {
	r := bufio.NewReaderSize(io.NewSectionReader(s.f, 0, 1<<62), 1<<20)
	res := &scanResult{idx: make(map[string]loc)}
	var off int64
	var scratch [binary.MaxVarintLen64]byte
	chunk := make([]byte, 32<<10)
	torn := func(at int64) { res.torn = true; res.tornAt = at }
	for {
		recStart := off
		kfield, n1, err := readUvarintRaw(r, &scratch)
		if err == io.EOF {
			break // clean record boundary
		}
		if err != nil {
			torn(recStart)
			break
		}
		crc := crc32.Update(0, crcTable, scratch[:n1])
		vfield, n2, err := readUvarintRaw(r, &scratch)
		if err != nil {
			torn(recStart)
			break
		}
		crc = crc32.Update(crc, crcTable, scratch[:n2])

		marker := kfield == 0
		klen := 0
		if !marker {
			klen = int(kfield - 1)
		}
		vlen := 0
		if vfield != 0 {
			vlen = int(vfield - 1)
		}
		if klen > maxKeyLen || vlen > maxValLen || klen < 0 || vlen < 0 {
			torn(recStart) // implausible header: corrupt bytes
			break
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(r, key); err != nil {
			torn(recStart)
			break
		}
		crc = crc32.Update(crc, crcTable, key)
		valOff := recStart + int64(n1+n2+klen)

		// Stream the value through the CRC; only marker payloads (small) are
		// retained.
		var meta []byte
		if marker {
			meta = make([]byte, vlen)
			if _, err := io.ReadFull(r, meta); err != nil {
				torn(recStart)
				break
			}
			crc = crc32.Update(crc, crcTable, meta)
		} else {
			remaining := vlen
			bad := false
			for remaining > 0 {
				n := remaining
				if n > len(chunk) {
					n = len(chunk)
				}
				if _, err := io.ReadFull(r, chunk[:n]); err != nil {
					bad = true
					break
				}
				crc = crc32.Update(crc, crcTable, chunk[:n])
				remaining -= n
			}
			if bad {
				torn(recStart)
				break
			}
		}
		var stored [4]byte
		if _, err := io.ReadFull(r, stored[:]); err != nil {
			torn(recStart)
			break
		}
		if binary.LittleEndian.Uint32(stored[:]) != crc {
			torn(recStart)
			break
		}

		off = valOff + int64(vlen) + 4
		res.records++
		res.recsPastMarker++
		switch {
		case marker:
			res.markers = append(res.markers, markerLoc{end: off, meta: meta, recs: res.records})
			res.recsPastMarker = 0
		case vfield == 0: // tombstone
			delete(res.idx, string(key))
		default:
			res.idx[string(key)] = loc{off: valOff, len: vlen}
		}
		res.validEnd = off
	}
	return res, nil
}

// recoverLog restores the log to its last durable point: the last valid
// commit marker when the log carries markers, otherwise the end of the valid
// record prefix. Trailing bytes past that point are truncated and accounted.
func (s *Store) recoverLog() (*Recovery, error) {
	fi, err := s.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("kvdisk: stat %s: %w", s.path, err)
	}
	size := fi.Size()
	res, err := s.scanLog()
	if err != nil {
		return nil, err
	}
	target := res.validEnd
	rolledRecords := 0
	if len(res.markers) > 0 {
		target = res.markers[len(res.markers)-1].end
		rolledRecords = res.recsPastMarker
	}
	rec := &Recovery{TornTail: res.torn, TornAt: res.tornAt, Markers: len(res.markers)}
	if len(res.markers) > 0 {
		rec.LastMeta = res.markers[len(res.markers)-1].meta
	}
	if target < size {
		if err := s.f.Truncate(target); err != nil {
			return nil, fmt.Errorf("kvdisk: truncate %s to %d: %w", s.path, target, err)
		}
		if err := s.f.Sync(); err != nil {
			return nil, fmt.Errorf("kvdisk: sync %s after truncate: %w", s.path, err)
		}
		rec.RolledBackBytes = size - target
		rec.RolledBackRecords = rolledRecords
		// Rebuild index and markers against the now-consistent file.
		res, err = s.scanLog()
		if err != nil {
			return nil, err
		}
	}
	s.idx = res.idx
	s.markers = res.markers
	s.records = res.records
	s.fileOff = target
	return rec, nil
}

// readUvarintRaw reads one uvarint, returning the value, its encoded width,
// and the raw bytes in scratch[:n] (for CRC accumulation).
func readUvarintRaw(r io.ByteReader, scratch *[binary.MaxVarintLen64]byte) (uint64, int, error) {
	var v uint64
	var shift, n int
	for {
		b, err := r.ReadByte()
		if err != nil {
			if n > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, n, err
		}
		if n >= binary.MaxVarintLen64 {
			return 0, n, fmt.Errorf("kvdisk: uvarint overflow")
		}
		scratch[n] = b
		n++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, n, nil
		}
		shift += 7
	}
}

// SetFaultHooks installs chaos-testing hooks: read fires before every Get
// and may return a transient error; flush returns an artificial stall for
// every Flush. Nil disables a hook.
func (s *Store) SetFaultHooks(read func(key []byte) error, flush func() time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readFault = read
	s.flushDelay = flush
}

// SetNoSync toggles crash simulation: while set, Flush/Sync/Commit keep
// every appended record in the write buffer and never touch the file, so a
// subsequent CrashClose drops them — the on-disk state a real process death
// before fsync would leave. Torture-harness use only.
func (s *Store) SetNoSync(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noSync = v
}

// Get returns the latest value for key. The boolean reports presence; the
// error is I/O (or injected) failure, on which the caller may retry.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	if s.readFault != nil {
		if err := s.readFault(key); err != nil {
			s.mu.RUnlock()
			return nil, false, err
		}
	}
	l, ok := s.idx[string(key)]
	if !ok {
		s.mu.RUnlock()
		return nil, false, nil
	}
	val := make([]byte, l.len)
	if l.off >= s.fileOff {
		// Still in the write buffer.
		copy(val, s.buf[l.off-s.fileOff:])
		s.mu.RUnlock()
		return val, true, nil
	}
	s.mu.RUnlock()
	// ReadAt is safe for concurrent use; committed records never move.
	if _, err := s.f.ReadAt(val, l.off); err != nil {
		return nil, false, fmt.Errorf("kvdisk: read %s: %w", s.path, err)
	}
	return val, true, nil
}

// appendRecord frames and checksums one record into the write buffer,
// returning the offset of its value bytes. Callers hold s.mu.
func (s *Store) appendRecord(kfield, vfield uint64, key, val []byte) int64 {
	start := len(s.buf)
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], kfield)
	n += binary.PutUvarint(hdr[n:], vfield)
	s.buf = append(s.buf, hdr[:n]...)
	s.buf = append(s.buf, key...)
	valOff := s.fileOff + int64(len(s.buf))
	s.buf = append(s.buf, val...)
	crc := crc32.Checksum(s.buf[start:], crcTable)
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], crc)
	s.buf = append(s.buf, cb[:]...)
	return valOff
}

// Put appends key -> val and updates the index.
func (s *Store) Put(key, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("kvdisk: put on closed store %s", s.path)
	}
	valOff := s.appendRecord(uint64(len(key))+1, uint64(len(val))+1, key, val)
	s.idx[string(key)] = loc{off: valOff, len: len(val)}
	s.puts++
	s.records++
	if len(s.buf) >= flushThreshold {
		return s.flushLocked()
	}
	return nil
}

// Delete appends a tombstone for key.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("kvdisk: delete on closed store %s", s.path)
	}
	if _, ok := s.idx[string(key)]; !ok {
		return nil
	}
	s.appendRecord(uint64(len(key))+1, 0, key, nil)
	delete(s.idx, string(key))
	s.deletes++
	s.records++
	if len(s.buf) >= flushThreshold {
		return s.flushLocked()
	}
	return nil
}

// Commit appends a checksummed commit marker carrying meta, flushes, and
// fsyncs: when it returns, every record appended before it is durable, and a
// reopen recovers to exactly this point. Meta is the caller's batch
// identity (the state backend stores height and root).
func (s *Store) Commit(meta []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("kvdisk: commit on closed store %s", s.path)
	}
	s.appendRecord(0, uint64(len(meta))+1, nil, meta)
	end := s.fileOff + int64(len(s.buf))
	cp := make([]byte, len(meta))
	copy(cp, meta)
	s.records++
	s.markers = append(s.markers, markerLoc{end: end, meta: cp, recs: s.records})
	s.commits++
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.syncLocked()
}

// Sync flushes buffered records and fsyncs the log: everything appended so
// far is durable on return (but not marker-delimited — a reopen of a
// marker-carrying log still rolls back to the last Commit).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.syncLocked()
}

// MarkerMetas returns the payloads of the log's valid commit markers in log
// order (as of the last recovery plus any markers committed since).
func (s *Store) MarkerMetas() [][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]byte, len(s.markers))
	for i, m := range s.markers {
		out[i] = m.meta
	}
	return out
}

// RollbackToMarker truncates the log to just past marker i (as indexed by
// MarkerMetas; -1 empties the log) and rebuilds the index. The state
// backend uses it to reconcile twin logs recovered to different heights.
func (s *Store) RollbackToMarker(i int) (*Recovery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("kvdisk: rollback on closed store %s", s.path)
	}
	if i >= len(s.markers) {
		return nil, fmt.Errorf("kvdisk: rollback to marker %d of %d", i, len(s.markers))
	}
	var target int64
	keepRecs := 0
	if i >= 0 {
		target = s.markers[i].end
		keepRecs = s.markers[i].recs
	}
	prevSize := s.fileOff + int64(len(s.buf))
	s.buf = s.buf[:0] // anything buffered is past the rollback point
	rec := &Recovery{}
	if target < prevSize {
		if err := s.f.Truncate(target); err != nil {
			return nil, fmt.Errorf("kvdisk: truncate %s to %d: %w", s.path, target, err)
		}
		if err := s.f.Sync(); err != nil {
			return nil, fmt.Errorf("kvdisk: sync %s after truncate: %w", s.path, err)
		}
		res, err := s.scanLog()
		if err != nil {
			return nil, err
		}
		rec.RolledBackBytes = prevSize - target
		rec.RolledBackRecords = s.records - keepRecs
		s.idx = res.idx
		s.markers = res.markers
		s.records = res.records
		s.fileOff = target
	}
	rec.Markers = len(s.markers)
	if len(s.markers) > 0 {
		rec.LastMeta = s.markers[len(s.markers)-1].meta
	}
	s.recovery.RolledBackBytes += rec.RolledBackBytes
	s.recovery.RolledBackRecords += rec.RolledBackRecords
	return rec, nil
}

// Range calls fn for every live key with the given prefix, in sorted key
// order. The key/value slices are fn's to keep.
func (s *Store) Range(prefix []byte, fn func(key, val []byte) error) error {
	s.mu.RLock()
	type ent struct {
		key string
		l   loc
		buf []byte // non-nil when the value was still buffered
	}
	ents := make([]ent, 0, len(s.idx))
	for k, l := range s.idx {
		if len(k) < len(prefix) || k[:len(prefix)] != string(prefix) {
			continue
		}
		e := ent{key: k, l: l}
		if l.off >= s.fileOff {
			e.buf = make([]byte, l.len)
			copy(e.buf, s.buf[l.off-s.fileOff:])
		}
		ents = append(ents, e)
	}
	s.mu.RUnlock()
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
	for _, e := range ents {
		val := e.buf
		if val == nil {
			val = make([]byte, e.l.len)
			if _, err := s.f.ReadAt(val, e.l.off); err != nil {
				return fmt.Errorf("kvdisk: range read %s: %w", s.path, err)
			}
		}
		if err := fn([]byte(e.key), val); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes the buffered records to the file.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.flushDelay != nil {
		if d := s.flushDelay(); d > 0 {
			time.Sleep(d)
		}
	}
	if len(s.buf) == 0 || s.noSync {
		return nil
	}
	if _, err := s.f.WriteAt(s.buf, s.fileOff); err != nil {
		return fmt.Errorf("kvdisk: flush %s: %w", s.path, err)
	}
	s.flushes++
	s.flushedBytes += int64(len(s.buf))
	s.fileOff += int64(len(s.buf))
	s.buf = s.buf[:0]
	return nil
}

// syncLocked fsyncs the log file, timing the call. Callers hold s.mu.
func (s *Store) syncLocked() error {
	if s.noSync {
		return nil
	}
	start := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("kvdisk: fsync %s: %w", s.path, err)
	}
	s.fsyncs++
	s.syncNs += time.Since(start).Nanoseconds()
	return nil
}

// Stats snapshots the durability counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Puts: s.puts, Deletes: s.deletes,
		Flushes: s.flushes, FlushedBytes: s.flushedBytes,
		Fsyncs: s.fsyncs, SyncNs: s.syncNs,
		Commits: s.commits,
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.idx)
}

// SizeOnDisk returns the log size in bytes, including unflushed records.
func (s *Store) SizeOnDisk() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fileOff + int64(len(s.buf))
}

// Close flushes buffered records, fsyncs, and closes the log file. A second
// Close is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.flushLocked(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.syncLocked(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// CrashClose simulates process death: buffered records are dropped on the
// floor and the file is closed without flush or fsync, leaving on disk
// exactly what prior flushes put there. Torture-harness use only.
func (s *Store) CrashClose() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.buf = nil
	return s.f.Close()
}
