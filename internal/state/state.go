// Package state implements the blockchain state substrate: accounts with
// balances, nonces, code, and 256-bit storage slots; a committed StateDB
// backed by Merkle Patricia Tries whose roots serve as the equivalence
// oracle (paper RQ1); and a journaled Overlay used for serial execution and
// per-transaction buffering.
package state

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dmvcc/internal/trie"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// EmptyCodeHash is keccak-256 of empty code.
var EmptyCodeHash = types.Keccak(nil)

// Reader is a read-only view of blockchain state. The committed StateDB and
// every overlay implement it. Implementations return zero values for
// non-existent accounts, matching EVM semantics.
type Reader interface {
	// Balance returns the account's wei balance.
	Balance(addr types.Address) u256.Int
	// Nonce returns the account's transaction count.
	Nonce(addr types.Address) uint64
	// Code returns the account's contract code (nil for non-contracts).
	Code(addr types.Address) []byte
	// Storage returns the value of one 256-bit storage slot.
	Storage(addr types.Address, key types.Hash) u256.Int
	// Exists reports whether the account has any state.
	Exists(addr types.Address) bool
}

// Account is the persistent record of one address.
type Account struct {
	Balance     u256.Int
	Nonce       uint64
	CodeHash    types.Hash
	StorageRoot types.Hash
}

// WriteSet is the net effect of executing a block: absolute final values
// for every touched field. It is what executors hand to DB.Commit.
type WriteSet struct {
	Balances map[types.Address]u256.Int
	Nonces   map[types.Address]uint64
	Codes    map[types.Address][]byte
	Storage  map[types.Address]map[types.Hash]u256.Int
}

// NewWriteSet returns an empty write set.
func NewWriteSet() *WriteSet {
	return &WriteSet{
		Balances: make(map[types.Address]u256.Int),
		Nonces:   make(map[types.Address]uint64),
		Codes:    make(map[types.Address][]byte),
		Storage:  make(map[types.Address]map[types.Hash]u256.Int),
	}
}

// SetStorage records a storage write.
func (w *WriteSet) SetStorage(addr types.Address, key types.Hash, val u256.Int) {
	m, ok := w.Storage[addr]
	if !ok {
		m = make(map[types.Hash]u256.Int)
		w.Storage[addr] = m
	}
	m[key] = val
}

// Merge folds other into w, with other taking precedence.
func (w *WriteSet) Merge(other *WriteSet) {
	for a, v := range other.Balances {
		w.Balances[a] = v
	}
	for a, v := range other.Nonces {
		w.Nonces[a] = v
	}
	for a, v := range other.Codes {
		w.Codes[a] = v
	}
	for a, m := range other.Storage {
		for k, v := range m {
			w.SetStorage(a, k, v)
		}
	}
}

// Len returns the total number of individual writes.
func (w *WriteSet) Len() int {
	n := len(w.Balances) + len(w.Nonces) + len(w.Codes)
	for _, m := range w.Storage {
		n += len(m)
	}
	return n
}

// DB is the committed state database: flat maps for fast reads, tries for
// root computation, and the history of per-block roots (the StateDB of the
// paper). DB is safe for concurrent readers; Commit must be exclusive.
type DB struct {
	mu       sync.RWMutex
	accounts map[types.Address]Account
	storage  map[types.Address]map[types.Hash]u256.Int
	codes    map[types.Hash][]byte

	store        *trie.MemStore
	accountTrie  *trie.Trie
	storageTries map[types.Address]*trie.Trie

	root  types.Hash
	roots []types.Hash
}

var _ Backend = (*DB)(nil)

// NewDB returns an empty state database at the empty root.
func NewDB() *DB {
	store := trie.NewMemStore()
	at, err := trie.New(trie.EmptyRoot, store)
	if err != nil {
		// New on an empty root cannot fail; treat as programmer error.
		panic(fmt.Sprintf("state: new account trie: %v", err))
	}
	return &DB{
		accounts:     make(map[types.Address]Account),
		storage:      make(map[types.Address]map[types.Hash]u256.Int),
		codes:        make(map[types.Hash][]byte),
		store:        store,
		accountTrie:  at,
		storageTries: make(map[types.Address]*trie.Trie),
		root:         trie.EmptyRoot,
		roots:        []types.Hash{trie.EmptyRoot},
	}
}

// Balance implements Reader.
func (db *DB) Balance(addr types.Address) u256.Int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.accounts[addr].Balance
}

// Nonce implements Reader.
func (db *DB) Nonce(addr types.Address) uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.accounts[addr].Nonce
}

// Code implements Reader.
func (db *DB) Code(addr types.Address) []byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	acc, ok := db.accounts[addr]
	if !ok || acc.CodeHash.IsZero() || acc.CodeHash == EmptyCodeHash {
		return nil
	}
	return db.codes[acc.CodeHash]
}

// Storage implements Reader.
func (db *DB) Storage(addr types.Address, key types.Hash) u256.Int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.storage[addr][key]
}

// Exists implements Reader.
func (db *DB) Exists(addr types.Address) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.accounts[addr]
	return ok
}

// Root returns the current committed state root.
func (db *DB) Root() types.Hash {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.root
}

// Roots returns the history of committed roots (index = block height).
func (db *DB) Roots() []types.Hash {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]types.Hash, len(db.roots))
	copy(out, db.roots)
	return out
}

// TrieStore implements Backend.
func (db *DB) TrieStore() trie.Store { return db.store }

// CodeByHash implements Backend.
func (db *DB) CodeByHash(h types.Hash) []byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.codes[h]
}

// Close implements Backend. The in-memory reference DB holds no external
// resources.
func (db *DB) Close() error { return nil }

// accountTrieValue encodes an account record for the account trie.
func accountTrieValue(acc Account) []byte {
	return encodeAccount(acc)
}

// Commit applies a write set atomically, updates the tries, records and
// returns the new state root. The paper's "flush last write of every access
// sequence to StateDB and make a new snapshot" step lands here. Storage
// tries of distinct accounts are independent, so their updates and subtree
// hashes run on a bounded worker group; the account trie is then updated
// serially in sorted address order, which keeps the root byte-identical to
// a fully serial commit (see DESIGN.md, "Parallel commit determinism").
func (db *DB) Commit(ws *WriteSet) (types.Hash, error) {
	return db.CommitWith(ws, runtime.GOMAXPROCS(0))
}

// storageResult is the parallel phase's output for one account: the new
// storage root and the flat-map updates to apply under db.mu.
type storageResult struct {
	root types.Hash
	err  error
}

// CommitWith is Commit with an explicit worker count for the storage-trie
// phase. workers <= 1 commits fully serially; any worker count produces
// byte-identical roots and trie-store contents (nodes are content-addressed
// and the account trie is always updated in sorted address order).
func (db *DB) CommitWith(ws *WriteSet, workers int) (types.Hash, error) {
	db.mu.Lock()
	defer db.mu.Unlock()

	touched := make(map[types.Address]struct{})
	for a := range ws.Balances {
		touched[a] = struct{}{}
	}
	for a := range ws.Nonces {
		touched[a] = struct{}{}
	}
	for a := range ws.Codes {
		touched[a] = struct{}{}
	}
	for a := range ws.Storage {
		touched[a] = struct{}{}
	}

	// Deterministic iteration keeps trie-store contents reproducible.
	order := make([]types.Address, 0, len(touched))
	for a := range touched {
		order = append(order, a)
	}
	sort.Slice(order, func(i, j int) bool {
		return lessAddr(order[i], order[j])
	})

	// Phase 1: update every touched storage trie and hash its new root.
	// Tries and flat maps are pre-opened serially so workers only ever
	// mutate per-account structures plus the (concurrency-safe) node store.
	storageAddrs := make([]types.Address, 0, len(ws.Storage))
	for _, addr := range order {
		if _, ok := ws.Storage[addr]; !ok {
			continue
		}
		if _, err := db.storageTrie(addr, db.accounts[addr].StorageRoot); err != nil {
			return types.Hash{}, err
		}
		if db.storage[addr] == nil {
			db.storage[addr] = make(map[types.Hash]u256.Int, len(ws.Storage[addr]))
		}
		storageAddrs = append(storageAddrs, addr)
	}
	results := make(map[types.Address]storageResult, len(storageAddrs))
	if workers <= 1 || len(storageAddrs) < 2 {
		for _, addr := range storageAddrs {
			root, err := db.commitStorage(addr, ws.Storage[addr])
			results[addr] = storageResult{root: root, err: err}
		}
	} else {
		if workers > len(storageAddrs) {
			workers = len(storageAddrs)
		}
		var (
			wg   sync.WaitGroup
			rmu  sync.Mutex
			next atomic.Int64
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(len(storageAddrs)) {
						return
					}
					addr := storageAddrs[i]
					root, err := db.commitStorage(addr, ws.Storage[addr])
					rmu.Lock()
					results[addr] = storageResult{root: root, err: err}
					rmu.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	for _, addr := range storageAddrs {
		if res := results[addr]; res.err != nil {
			return types.Hash{}, res.err
		}
	}

	// Phase 2 (serial, deterministic): fold account fields and the storage
	// roots into the account trie in sorted address order.
	for _, addr := range order {
		acc := db.accounts[addr]
		if v, ok := ws.Balances[addr]; ok {
			acc.Balance = v
		}
		if v, ok := ws.Nonces[addr]; ok {
			acc.Nonce = v
		}
		if code, ok := ws.Codes[addr]; ok {
			h := types.Keccak(code)
			db.codes[h] = code
			acc.CodeHash = h
		}
		if res, ok := results[addr]; ok {
			acc.StorageRoot = res.root
		}
		db.accounts[addr] = acc

		hk := types.Keccak(addr[:])
		if err := db.accountTrie.Put(hk[:], accountTrieValue(acc)); err != nil {
			return types.Hash{}, fmt.Errorf("account put: %w", err)
		}
	}

	root, err := db.accountTrie.Commit()
	if err != nil {
		return types.Hash{}, fmt.Errorf("account commit: %w", err)
	}
	db.root = root
	db.roots = append(db.roots, root)
	return root, nil
}

// commitStorage applies one account's slot writes to its (pre-opened)
// storage trie and flat map and returns the committed subtree root. Callers
// guarantee exclusive access to the account's trie and flat map; the shared
// node store is concurrency-safe.
func (db *DB) commitStorage(addr types.Address, slots map[types.Hash]u256.Int) (types.Hash, error) {
	st := db.storageTries[addr]
	flat := db.storage[addr]
	keys := make([]types.Hash, 0, len(slots))
	for k := range slots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessHash(keys[i], keys[j]) })
	for _, k := range keys {
		v := slots[k]
		hk := types.Keccak(k[:])
		if v.IsZero() {
			delete(flat, k)
			if err := st.Delete(hk[:]); err != nil {
				return types.Hash{}, fmt.Errorf("storage delete: %w", err)
			}
		} else {
			flat[k] = v
			if err := st.Put(hk[:], v.Bytes()); err != nil {
				return types.Hash{}, fmt.Errorf("storage put: %w", err)
			}
		}
	}
	sroot, err := st.Commit()
	if err != nil {
		return types.Hash{}, fmt.Errorf("storage commit: %w", err)
	}
	return sroot, nil
}

// storageTrie returns (caching) the storage trie for addr at the given root.
func (db *DB) storageTrie(addr types.Address, root types.Hash) (*trie.Trie, error) {
	if st, ok := db.storageTries[addr]; ok {
		return st, nil
	}
	st, err := trie.New(root, db.store)
	if err != nil {
		return nil, fmt.Errorf("open storage trie: %w", err)
	}
	db.storageTries[addr] = st
	return st, nil
}

func lessAddr(a, b types.Address) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func lessHash(a, b types.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
