package state

import (
	"dmvcc/internal/rlp"
	"dmvcc/internal/trie"
	"dmvcc/internal/u256"
)

// encodeAccount serializes an account record for the account trie as
// RLP [nonce, balance, storageRoot, codeHash], mirroring Ethereum's layout.
func encodeAccount(acc Account) []byte {
	sroot := acc.StorageRoot
	if sroot.IsZero() {
		sroot = trie.EmptyRoot
	}
	ch := acc.CodeHash
	if ch.IsZero() {
		ch = EmptyCodeHash
	}
	return rlp.EncodeList(
		rlp.Uint(acc.Nonce),
		rlp.String(acc.Balance.Bytes()),
		rlp.String(sroot[:]),
		rlp.String(ch[:]),
	)
}

// decodeAccount parses the trie encoding produced by encodeAccount.
func decodeAccount(enc []byte) (Account, error) {
	it, err := rlp.Decode(enc)
	if err != nil {
		return Account{}, err
	}
	var acc Account
	if len(it.List) != 4 {
		return acc, rlp.ErrNonCanon
	}
	nonce, err := it.List[0].AsUint()
	if err != nil {
		return acc, err
	}
	acc.Nonce = nonce
	acc.Balance = u256.FromBytes(it.List[1].Str)
	copy(acc.StorageRoot[:], it.List[2].Str)
	copy(acc.CodeHash[:], it.List[3].Str)
	return acc, nil
}
