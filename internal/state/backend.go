package state

import (
	"fmt"

	"dmvcc/internal/trie"
	"dmvcc/internal/types"
)

// Backend is the pluggable committed-state store behind the execution
// engines: account and slot reads on the hot path, atomic write-set commits
// producing authenticated roots, and historical/proof access through the
// trie node store. The reference implementation is the trie-backed DB; the
// FlatBackend (in-memory or disk-backed) serves reads from flat key-value
// lookups and builds the Merkle trie lazily, only at commit time, from the
// block's dirty set. Every implementation must produce byte-identical roots
// for identical commit histories — the cross-backend differential tests
// enforce it.
//
// Implementations are safe for concurrent readers; Commit is exclusive with
// other commits (concurrent reads during commit see either the pre- or
// post-state of individual keys, never torn values).
type Backend interface {
	Reader

	// Commit applies a write set atomically and returns the new state root.
	Commit(ws *WriteSet) (types.Hash, error)
	// CommitWith is Commit with an explicit trie-hashing worker count; any
	// worker count produces byte-identical roots.
	CommitWith(ws *WriteSet, workers int) (types.Hash, error)
	// Root returns the current committed state root.
	Root() types.Hash
	// Roots returns the history of committed roots (index = block height).
	Roots() []types.Hash
	// StateAt returns a read-only view of the state at a past committed
	// root, resolved through the trie node store.
	StateAt(root types.Hash) (Reader, error)
	// TrieStore exposes the node store the committed tries persist into —
	// the substrate for proofs and historical reads.
	TrieStore() trie.Store
	// CodeByHash returns the contract code with the given keccak hash (nil
	// when unknown). Used by historical views and proof consumers.
	CodeByHash(h types.Hash) []byte
	// Close releases backend resources (files, background committers). A
	// closed backend must not be used further.
	Close() error
}

// AsyncCommitter is an optional Backend capability: CommitAsync applies the
// write set's flat-state updates synchronously — reads issued after it
// returns see the post-state — while the authenticated trie build runs on a
// background committer, off the caller's critical path. Queued commits are
// processed strictly in order, so roots land in block order. The chain
// pipeline uses this to overlap block N's trie commit with block N+1's
// execution.
type AsyncCommitter interface {
	CommitAsync(ws *WriteSet, workers int) <-chan CommitResult
}

// CommitResult is the outcome of an asynchronous commit.
type CommitResult struct {
	Root types.Hash
	Err  error
	// Stats carries the commit-stage timing split (zero when the backend
	// does not measure it).
	Stats CommitStats
}

// CommitStats is the timing split of one commit, for commit-stage telemetry.
type CommitStats struct {
	// StorageNs is the parallel storage-trie phase; AccountNs the account
	// trie (shard) phase, including root assembly.
	StorageNs int64
	// AccountNs is the account-trie update and hash phase.
	AccountNs int64
	// FlatNs is the flat key-value apply phase.
	FlatNs int64
	// DirtyAccounts and DirtySlots size the block's dirty set.
	DirtyAccounts int
	DirtySlots    int
	// Shards is the account-trie fan-out used.
	Shards int
	// SyncNs is the durability phase: commit markers plus fsync on the
	// backing logs (zero for in-memory backends).
	SyncNs int64
}

// RecoveryInfo describes what a disk-backed backend's opening recovery did.
type RecoveryInfo struct {
	// Height and Root are the durable point the backend resumed from.
	Height uint64
	Root   types.Hash
	// TornTail reports that either log ended in a torn or corrupt record.
	TornTail bool
	// RolledBackBytes/RolledBackRecords total what recovery truncated across
	// both logs, including any cross-log reconciliation.
	RolledBackBytes   int64
	RolledBackRecords int
	// HeightRollback counts commits rolled off the flat log to reconcile it
	// with a nodes log that did not survive as far.
	HeightRollback int
}

// DurabilityStats snapshots a backend's durability counters for telemetry.
type DurabilityStats struct {
	// Persistent reports whether the backend writes to disk at all; the
	// remaining fields are zero when it does not.
	Persistent bool
	// Fsyncs counts file syncs across the backing logs; SyncNs their
	// cumulative latency.
	Fsyncs int64
	SyncNs int64
	// FlushedBytes is the total bytes written down to the logs.
	FlushedBytes int64
	// Commits counts durable commit markers (one per committed block).
	Commits int64
	// LogBytes is the current combined log size.
	LogBytes int64
	// RecoveredHeight and RolledBackBytes echo the opening recovery.
	RecoveredHeight uint64
	RolledBackBytes int64
}

// ProveAccount builds a Merkle proof of addr's account record against the
// backend's current root. The proof verifies with trie.VerifyProof and is
// byte-identical across backends at the same root.
func ProveAccount(b Backend, addr types.Address) (trie.Proof, error) {
	t, err := trie.New(b.Root(), b.TrieStore())
	if err != nil {
		return nil, err
	}
	hk := types.Keccak(addr[:])
	return t.Prove(hk[:])
}

// ProveStorage builds a Merkle proof of one storage slot against the
// account's storage root at the backend's current root. It returns the
// storage root the proof verifies against alongside the proof itself.
func ProveStorage(b Backend, addr types.Address, key types.Hash) (types.Hash, trie.Proof, error) {
	t, err := trie.New(b.Root(), b.TrieStore())
	if err != nil {
		return types.Hash{}, nil, err
	}
	hk := types.Keccak(addr[:])
	enc, err := t.Get(hk[:])
	if err != nil {
		return types.Hash{}, nil, fmt.Errorf("state: account %s not in trie: %w", addr, err)
	}
	acc, err := decodeAccount(enc)
	if err != nil {
		return types.Hash{}, nil, err
	}
	sroot := acc.StorageRoot
	if sroot.IsZero() {
		sroot = trie.EmptyRoot
	}
	st, err := trie.New(sroot, b.TrieStore())
	if err != nil {
		return types.Hash{}, nil, err
	}
	hkey := types.Keccak(key[:])
	proof, err := st.Prove(hkey[:])
	return sroot, proof, err
}
