package state

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dmvcc/internal/trie"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// proofWorld commits the same few blocks to a reference DB and a flat
// backend and returns both (same roots, different node-store provenance:
// the DB's nodes come from incremental resident-trie commits, the flat
// backend's from lazy sharded commit).
func proofWorld(t *testing.T) (*DB, *FlatBackend, []types.Address) {
	t.Helper()
	db := NewDB()
	fb := NewFlatMem()
	t.Cleanup(func() { fb.Close() })
	addrs := testAddrs(20)
	rng := rand.New(rand.NewSource(0x9f))
	for blk := 0; blk < 5; blk++ {
		ws := randWriteSet(rng, addrs)
		wr, err := db.Commit(ws)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := fb.Commit(ws)
		if err != nil {
			t.Fatal(err)
		}
		if wr != fr {
			t.Fatalf("block %d: roots diverge before proof test", blk)
		}
	}
	return db, fb, addrs
}

// TestProofRoundTripFlatVsTrie: account proofs built from the flat backend's
// lazily committed trie verify against the shared root and prove the same
// values as proofs built from the reference DB — for present and absent
// accounts alike.
func TestProofRoundTripFlatVsTrie(t *testing.T) {
	db, fb, addrs := proofWorld(t)
	root := db.Root()

	ghost := types.HexToAddress("0xdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef")
	for _, addr := range append(addrs[:8:8], ghost) {
		dbProof, err := ProveAccount(db, addr)
		if err != nil {
			t.Fatalf("db proof %s: %v", addr, err)
		}
		fbProof, err := ProveAccount(fb, addr)
		if err != nil {
			t.Fatalf("flat proof %s: %v", addr, err)
		}

		hk := types.Keccak(addr[:])
		dbVal, err := trie.VerifyProof(root, hk[:], dbProof)
		if err != nil {
			t.Fatalf("verify db proof %s: %v", addr, err)
		}
		fbVal, err := trie.VerifyProof(root, hk[:], fbProof)
		if err != nil {
			t.Fatalf("verify flat proof %s: %v", addr, err)
		}
		if !bytes.Equal(dbVal, fbVal) {
			t.Errorf("%s: proven values differ: db %x, flat %x", addr, dbVal, fbVal)
		}
		if db.Exists(addr) {
			if len(dbVal) == 0 {
				t.Errorf("%s: existing account proved absent", addr)
			}
			acc, err := decodeAccount(fbVal)
			if err != nil {
				t.Fatalf("%s: proven value not an account: %v", addr, err)
			}
			if want := db.Balance(addr); !acc.Balance.Eq(&want) {
				t.Errorf("%s: proven balance %s != %s", addr, acc.Balance.Hex(), want.Hex())
			}
		} else if len(dbVal) != 0 {
			t.Errorf("%s: absent account proved present: %x", addr, dbVal)
		}
	}
}

// TestStorageProofRoundTrip: storage-slot proofs from both backends verify
// against the account's storage root and agree on the slot value.
func TestStorageProofRoundTrip(t *testing.T) {
	db, fb, addrs := proofWorld(t)
	for _, addr := range addrs {
		for s := 0; s < 12; s++ {
			slot := types.HexToHash(fmt.Sprintf("0x%02x", s))
			want := db.Storage(addr, slot)

			dbRoot, dbProof, err := ProveStorage(db, addr, slot)
			if err != nil {
				continue // account absent from the trie
			}
			fbRoot, fbProof, err := ProveStorage(fb, addr, slot)
			if err != nil {
				t.Fatalf("flat storage proof %s/%s: %v", addr, slot, err)
			}
			if dbRoot != fbRoot {
				t.Fatalf("%s: storage roots differ: db %s, flat %s", addr, dbRoot, fbRoot)
			}
			hk := types.Keccak(slot[:])
			dbVal, err := trie.VerifyProof(dbRoot, hk[:], dbProof)
			if err != nil {
				t.Fatalf("verify db storage proof: %v", err)
			}
			fbVal, err := trie.VerifyProof(fbRoot, hk[:], fbProof)
			if err != nil {
				t.Fatalf("verify flat storage proof: %v", err)
			}
			if !bytes.Equal(dbVal, fbVal) {
				t.Errorf("%s/%s: proven slot values differ", addr, slot)
			}
			got := u256.FromBytes(dbVal)
			if !got.Eq(&want) {
				t.Errorf("%s/%s: proven %s != committed %s", addr, slot, got.Hex(), want.Hex())
			}
		}
	}
}

// TestProofTamperRejected: a proof with a mutated node fails verification
// rather than proving a wrong value.
func TestProofTamperRejected(t *testing.T) {
	db, _, addrs := proofWorld(t)
	addr := addrs[0]
	proof, err := ProveAccount(db, addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) == 0 {
		t.Fatal("empty proof for existing account")
	}
	proof[0] = append([]byte(nil), proof[0]...)
	proof[0][len(proof[0])-1] ^= 0xff
	hk := types.Keccak(addr[:])
	if _, err := trie.VerifyProof(db.Root(), hk[:], proof); err == nil {
		t.Error("tampered proof verified")
	}
}
