package state

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dmvcc/internal/trie"
)

// TestDiskCrashRecoverDifferential crash-cycles a disk-backed flat backend
// against an always-alive trie-DB twin on one shared write-set stream: every
// cycle commits a few blocks, kills the disk backend at one of the three
// crash points (buffered-only, fully durable, torn tail), reopens, and
// requires the recovered root to be byte-identical to the twin's root at the
// recovered height before replaying the lost blocks and moving on.
func TestDiskCrashRecoverDifferential(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(0xc7a5))
	addrs := testAddrs(32)
	twin := NewDB()

	var wss []*WriteSet // wss[i] commits to height i+1 on both backends
	commitTwin := func(ws *WriteSet) {
		if _, err := twin.Commit(ws); err != nil {
			t.Fatal(err)
		}
	}

	disk, err := NewFlat(FlatOpts{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const cycles, blocksPerCycle = 6, 3
	for cycle := 0; cycle < cycles; cycle++ {
		mode := cycle % 3
		for b := 0; b < blocksPerCycle; b++ {
			if mode == 0 && b == blocksPerCycle-1 {
				// Crash point 1: the last block's commit stays in the write
				// buffers — durable state must end one height earlier.
				disk.SetNoSync(true)
			}
			ws := randWriteSet(rng, addrs)
			wss = append(wss, ws)
			commitTwin(ws)
			root, err := disk.Commit(ws)
			if err != nil {
				t.Fatalf("cycle %d block %d: %v", cycle, b, err)
			}
			if want := twin.Root(); root != want {
				t.Fatalf("cycle %d block %d: disk root %s != twin %s", cycle, b, root, want)
			}
		}
		if err := disk.Crash(); err != nil {
			t.Fatal(err)
		}
		if mode == 2 {
			// Crash point 3: torn tail — truncate the flat log at a random
			// offset, sometimes tearing the nodes log too (which forces the
			// flat log to reconcile down to the nodes log's last marker).
			tear := func(name string) {
				path := filepath.Join(dir, name+".log")
				fi, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				if fi.Size() < 2 {
					return
				}
				if err := os.Truncate(path, 1+rng.Int63n(fi.Size()-1)); err != nil {
					t.Fatal(err)
				}
			}
			tear("flat")
			if rng.Intn(2) == 0 {
				tear("nodes")
			}
		}

		disk, err = NewFlat(FlatOpts{Dir: dir})
		if err != nil {
			t.Fatalf("cycle %d reopen: %v", cycle, err)
		}
		info := disk.RecoveryInfo()
		if info == nil {
			t.Fatal("no recovery info")
		}
		wantHeight := uint64(len(wss))
		switch mode {
		case 0:
			wantHeight-- // buffered commit must not survive
			if info.RolledBackBytes != 0 {
				t.Errorf("cycle %d: buffered crash rolled back %d bytes on disk", cycle, info.RolledBackBytes)
			}
		case 1:
			// Fully durable: nothing to roll back, nothing lost.
			if info.TornTail || info.RolledBackBytes != 0 {
				t.Errorf("cycle %d: clean crash reported torn=%v rolled=%d", cycle, info.TornTail, info.RolledBackBytes)
			}
		}
		if mode != 2 && info.Height != wantHeight {
			t.Fatalf("cycle %d: recovered height %d, want %d", cycle, info.Height, wantHeight)
		}
		if info.Height > uint64(len(wss)) {
			t.Fatalf("cycle %d: recovered height %d beyond committed %d", cycle, info.Height, len(wss))
		}
		wantRoot := trie.EmptyRoot
		if info.Height > 0 {
			wantRoot = twin.Roots()[info.Height]
		}
		if got := disk.Root(); got != wantRoot {
			t.Fatalf("cycle %d: recovered root %s != twin root %s at height %d", cycle, got, wantRoot, info.Height)
		}
		if err := disk.VerifyRecovered(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		// Replay the blocks recovery rolled off and re-converge with the twin.
		for i := info.Height; i < uint64(len(wss)); i++ {
			if _, err := disk.Commit(wss[i]); err != nil {
				t.Fatalf("cycle %d replay height %d: %v", cycle, i+1, err)
			}
		}
		if got, want := disk.Root(), twin.Root(); got != want {
			t.Fatalf("cycle %d: post-replay root %s != twin %s", cycle, got, want)
		}
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
}
