package state

import (
	"fmt"
	"math/rand"
	"testing"

	"dmvcc/internal/trie"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// testAddrs returns n deterministic addresses spread across the address
// space (and therefore across account-trie shards).
func testAddrs(n int) []types.Address {
	rng := rand.New(rand.NewSource(0xadd7))
	addrs := make([]types.Address, n)
	for i := range addrs {
		rng.Read(addrs[i][:])
	}
	return addrs
}

// randWriteSet builds a random block write set over the address pool:
// balance/nonce churn, occasional code deploys, storage writes with a
// healthy share of zero-value deletes.
func randWriteSet(rng *rand.Rand, addrs []types.Address) *WriteSet {
	ws := NewWriteSet()
	n := 1 + rng.Intn(len(addrs)/2)
	for i := 0; i < n; i++ {
		addr := addrs[rng.Intn(len(addrs))]
		switch rng.Intn(4) {
		case 0:
			ws.Balances[addr] = u256.NewUint64(rng.Uint64() % 1_000_000)
		case 1:
			ws.Nonces[addr] = rng.Uint64() % 1000
		case 2:
			code := make([]byte, 1+rng.Intn(40))
			rng.Read(code)
			ws.Codes[addr] = code
		default:
			for s := 0; s < 1+rng.Intn(4); s++ {
				slot := types.HexToHash(fmt.Sprintf("0x%02x", rng.Intn(12)))
				if rng.Intn(3) == 0 {
					ws.SetStorage(addr, slot, u256.Zero) // delete
				} else {
					ws.SetStorage(addr, slot, u256.NewUint64(rng.Uint64()%1_000_000+1))
				}
			}
		}
	}
	return ws
}

// diffBackends builds the full backend matrix under test: the reference
// trie DB, in-memory flat backends at 1 and ShardCount shards, and a
// disk-backed flat backend.
func diffBackends(t *testing.T) (map[string]Backend, string) {
	t.Helper()
	dir := t.TempDir()
	flat1, err := NewFlat(FlatOpts{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	flatN := NewFlatMem()
	disk, err := NewFlat(FlatOpts{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	backends := map[string]Backend{
		"db":    NewDB(),
		"flat1": flat1,
		"flatN": flatN,
		"diskN": disk,
	}
	t.Cleanup(func() {
		for _, b := range backends {
			b.Close()
		}
	})
	return backends, dir
}

// TestBackendDifferentialRoots is the defining invariant of the pluggable
// backend: every backend produces byte-identical roots for an identical
// commit history — across flat/sharded/disk layouts and across worker
// counts — and serves identical reads, historical views, and proofs.
func TestBackendDifferentialRoots(t *testing.T) {
	backends, _ := diffBackends(t)
	addrs := testAddrs(40)
	rng := rand.New(rand.NewSource(42))

	const blocks = 12
	var refRoots []types.Hash
	for blk := 0; blk < blocks; blk++ {
		ws := randWriteSet(rng, addrs)
		workers := []int{1, 2, 16, 4}
		roots := make(map[string]types.Hash, len(backends))
		i := 0
		for name, b := range backends {
			root, err := b.CommitWith(ws, workers[i%len(workers)])
			if err != nil {
				t.Fatalf("block %d: %s commit: %v", blk, name, err)
			}
			roots[name] = root
			i++
		}
		ref := roots["db"]
		for name, root := range roots {
			if root != ref {
				t.Fatalf("block %d: %s root %s != db root %s", blk, name, root, ref)
			}
		}
		refRoots = append(refRoots, ref)
	}

	// Flat reads agree with the reference across the whole address pool.
	db := backends["db"]
	for name, b := range backends {
		for _, addr := range addrs {
			if got, want := b.Balance(addr), db.Balance(addr); !got.Eq(&want) {
				t.Errorf("%s balance(%s) = %s, want %s", name, addr, got.Hex(), want.Hex())
			}
			if got, want := b.Nonce(addr), db.Nonce(addr); got != want {
				t.Errorf("%s nonce(%s) = %d, want %d", name, addr, got, want)
			}
			if got, want := string(b.Code(addr)), string(db.Code(addr)); got != want {
				t.Errorf("%s code(%s) mismatch", name, addr)
			}
			if got, want := b.Exists(addr), db.Exists(addr); got != want {
				t.Errorf("%s exists(%s) = %v, want %v", name, addr, got, want)
			}
			for s := 0; s < 12; s++ {
				slot := types.HexToHash(fmt.Sprintf("0x%02x", s))
				if got, want := b.Storage(addr, slot), db.Storage(addr, slot); !got.Eq(&want) {
					t.Errorf("%s storage(%s,%s) = %s, want %s", name, addr, slot, got.Hex(), want.Hex())
				}
			}
		}
	}

	// Historical views at a mid-chain root agree too.
	mid := refRoots[len(refRoots)/2]
	for name, b := range backends {
		h, err := b.StateAt(mid)
		if err != nil {
			t.Fatalf("%s StateAt(%s): %v", name, mid, err)
		}
		href, err := db.StateAt(mid)
		if err != nil {
			t.Fatal(err)
		}
		for _, addr := range addrs[:10] {
			if got, want := h.Balance(addr), href.Balance(addr); !got.Eq(&want) {
				t.Errorf("%s historical balance(%s) = %s, want %s", name, addr, got.Hex(), want.Hex())
			}
		}
	}

	// Root history matches block for block (every backend starts at the
	// empty root).
	wantRoots := append([]types.Hash{trie.EmptyRoot}, refRoots...)
	for name, b := range backends {
		got := b.Roots()
		if len(got) != len(wantRoots) {
			t.Fatalf("%s roots len = %d, want %d", name, len(got), len(wantRoots))
		}
		for i := range got {
			if got[i] != wantRoots[i] {
				t.Errorf("%s roots[%d] = %s, want %s", name, i, got[i], wantRoots[i])
			}
		}
	}
}

// TestDiskBackendReopen closes a disk-backed flat backend mid-history and
// reopens it from the same directory: the root history, reads, and — the
// hard part — subsequent commits must pick up exactly where they left off,
// staying byte-identical to the reference DB.
func TestDiskBackendReopen(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	disk, err := NewFlat(FlatOpts{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	addrs := testAddrs(24)
	rng := rand.New(rand.NewSource(7))

	for blk := 0; blk < 6; blk++ {
		ws := randWriteSet(rng, addrs)
		want, err := db.Commit(ws)
		if err != nil {
			t.Fatal(err)
		}
		got, err := disk.Commit(ws)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("block %d: disk root %s != db root %s", blk, got, want)
		}
	}
	wantRoot := disk.Root()
	wantRoots := disk.Roots()
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := NewFlat(FlatOpts{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Root() != wantRoot {
		t.Fatalf("reopened root = %s, want %s", reopened.Root(), wantRoot)
	}
	if got := reopened.Roots(); len(got) != len(wantRoots) {
		t.Fatalf("reopened roots len = %d, want %d", len(got), len(wantRoots))
	}
	for _, addr := range addrs {
		if got, want := reopened.Balance(addr), db.Balance(addr); !got.Eq(&want) {
			t.Errorf("reopened balance(%s) = %s, want %s", addr, got.Hex(), want.Hex())
		}
	}

	// Continue the chain after reopen: sharded tries must resume from the
	// persisted root (OpenSharded) and storage tries from persisted account
	// records.
	for blk := 0; blk < 4; blk++ {
		ws := randWriteSet(rng, addrs)
		want, err := db.Commit(ws)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reopened.Commit(ws)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-reopen block %d: disk root %s != db root %s", blk, got, want)
		}
	}
}

// TestFlatAsyncCommit exercises the AsyncCommitter capability: flat reads
// see the post-state as soon as CommitAsync returns, results arrive in
// submission order, and the roots match a serially committed reference.
func TestFlatAsyncCommit(t *testing.T) {
	fb := NewFlatMem()
	defer fb.Close()
	db := NewDB()
	addrs := testAddrs(16)
	rng := rand.New(rand.NewSource(99))

	const blocks = 8
	chans := make([]<-chan CommitResult, blocks)
	wantRoots := make([]types.Hash, blocks)
	wantBal := make([]u256.Int, blocks)
	for blk := 0; blk < blocks; blk++ {
		ws := randWriteSet(rng, addrs)
		ws.Balances[addrs[0]] = u256.NewUint64(uint64(1000 + blk))
		var err error
		wantRoots[blk], err = db.Commit(ws)
		if err != nil {
			t.Fatal(err)
		}
		chans[blk] = fb.CommitAsync(ws, 4)
		// Flat post-state is visible immediately, before the trie lands.
		if got := fb.Balance(addrs[0]); got.Uint64() != uint64(1000+blk) {
			t.Fatalf("block %d: flat read after CommitAsync = %d, want %d", blk, got.Uint64(), 1000+blk)
		}
		wantBal[blk] = u256.NewUint64(uint64(1000 + blk))
	}
	for blk, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("block %d: async commit: %v", blk, res.Err)
		}
		if res.Root != wantRoots[blk] {
			t.Fatalf("block %d: async root %s != reference %s", blk, res.Root, wantRoots[blk])
		}
		if res.Stats.DirtyAccounts == 0 {
			t.Errorf("block %d: stats not populated", blk)
		}
	}
	if fb.Root() != wantRoots[blocks-1] {
		t.Errorf("final root = %s, want %s", fb.Root(), wantRoots[blocks-1])
	}
}

func TestFlatShardsValidation(t *testing.T) {
	if _, err := NewFlat(FlatOpts{Shards: 3}); err == nil {
		t.Fatal("NewFlat accepted 3 shards")
	}
	fb, err := NewFlat(FlatOpts{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	fb.Close()
	if _, err := fb.Commit(NewWriteSet()); err == nil {
		t.Fatal("commit on closed backend succeeded")
	}
}

func TestFlatEmptyCommit(t *testing.T) {
	fb := NewFlatMem()
	defer fb.Close()
	db := NewDB()
	wr, err := db.Commit(NewWriteSet())
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fb.Commit(NewWriteSet())
	if err != nil {
		t.Fatal(err)
	}
	if fr != wr {
		t.Fatalf("empty commit root %s != reference %s", fr, wr)
	}
}
