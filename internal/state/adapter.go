package state

import (
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// VMAdapter exposes an Overlay through the error-returning accessor
// interface the EVM consumes (evm.State). The overlay never fails, so all
// errors are nil; scheduler-backed accessors are where failures originate.
type VMAdapter struct {
	overlay *Overlay
}

// NewVMAdapter wraps an overlay for use as an evm.State.
func NewVMAdapter(o *Overlay) *VMAdapter { return &VMAdapter{overlay: o} }

// Overlay returns the wrapped overlay.
func (a *VMAdapter) Overlay() *Overlay { return a.overlay }

// GetBalance implements evm.State.
func (a *VMAdapter) GetBalance(addr types.Address) (u256.Int, error) {
	return a.overlay.Balance(addr), nil
}

// SetBalance implements evm.State.
func (a *VMAdapter) SetBalance(addr types.Address, v u256.Int) error {
	a.overlay.SetBalance(addr, v)
	return nil
}

// GetNonce implements evm.State.
func (a *VMAdapter) GetNonce(addr types.Address) (uint64, error) {
	return a.overlay.Nonce(addr), nil
}

// SetNonce implements evm.State.
func (a *VMAdapter) SetNonce(addr types.Address, v uint64) error {
	a.overlay.SetNonce(addr, v)
	return nil
}

// GetCode implements evm.State.
func (a *VMAdapter) GetCode(addr types.Address) ([]byte, error) {
	return a.overlay.Code(addr), nil
}

// SetCode implements evm.State.
func (a *VMAdapter) SetCode(addr types.Address, code []byte) error {
	a.overlay.SetCode(addr, code)
	return nil
}

// GetState implements evm.State.
func (a *VMAdapter) GetState(addr types.Address, key types.Hash) (u256.Int, error) {
	return a.overlay.Storage(addr, key), nil
}

// SetState implements evm.State.
func (a *VMAdapter) SetState(addr types.Address, key types.Hash, v u256.Int) error {
	a.overlay.SetStorage(addr, key, v)
	return nil
}

// AddBalance implements the evm.BalanceAdder extension.
func (a *VMAdapter) AddBalance(addr types.Address, delta u256.Int) error {
	a.overlay.AddBalance(addr, &delta)
	return nil
}

// Snapshot implements evm.State.
func (a *VMAdapter) Snapshot() int { return a.overlay.Snapshot() }

// RevertToSnapshot implements evm.State.
func (a *VMAdapter) RevertToSnapshot(rev int) { a.overlay.RevertToSnapshot(rev) }
