// Package chainsim reproduces the paper's RQ3 environment: a micro testnet
// of validators where blocks are mined at a tunable interval (the paper
// uses ~12 s to match mainnet, then ~1 s to expose the execution
// bottleneck), propagate with latency, and must be fully executed by a
// validator before it can build on them. Block execution latencies come
// from really executing the blocks and converting the scheduler's
// virtual-time makespan to seconds with a calibration factor chosen so a
// serial 10,000-transaction block costs about what the paper reports
// (30-40 s of execution per block cycle).
package chainsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dmvcc/internal/chain"
	"dmvcc/internal/telemetry"
	"dmvcc/internal/workload"
)

// Config parameterizes one simulated deployment.
type Config struct {
	// Validators in the network (the paper uses 20).
	Validators int
	// MeanBlockInterval is the average mining interval.
	MeanBlockInterval time.Duration
	// PropagationDelay is the mean block propagation latency.
	PropagationDelay time.Duration
	// Blocks to simulate.
	Blocks int
	// Workload configures the traffic (TxPerBlock is the block size).
	Workload workload.Config
	// SerialSecondsPer10k calibrates gas->seconds: the wall time a serial
	// validator needs for a 10,000-transaction block. The paper's setup
	// implies roughly 35 s.
	SerialSecondsPer10k float64
	// Seed drives mining-interval and validator-jitter randomness.
	Seed int64
	// Tracer, when non-nil and enabled, collects the scheduler events of the
	// really-executed blocks (one telemetry block per simulated block).
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, accumulates the execution engine's metrics.
	Metrics *telemetry.Registry
	// Forensics, when non-nil and enabled, collects conflict forensics and
	// the C-SAG accuracy audit of the really-executed blocks (DMVCC only).
	Forensics *telemetry.Forensics
	// Ledger, when non-nil and enabled, records per-stage occupancy
	// intervals of the really-executed blocks (feeding a live
	// /telemetry/timeline endpoint).
	Ledger *telemetry.StageLedger
}

// DefaultConfig mirrors the paper's RQ3 setup with execution as the
// bottleneck (the adjusted-difficulty variant).
func DefaultConfig() Config {
	return Config{
		Validators:          20,
		MeanBlockInterval:   time.Second,
		PropagationDelay:    150 * time.Millisecond,
		Blocks:              4,
		Workload:            workload.DefaultConfig(),
		SerialSecondsPer10k: 35,
		Seed:                7,
	}
}

// Result summarizes one simulated run.
type Result struct {
	TotalTxs      int
	SimulatedTime time.Duration
	// Throughput in transactions per second of simulated time.
	Throughput float64
	// AvgExecTime is the mean per-block execution latency.
	AvgExecTime time.Duration
	// AvgMiningWait is the mean mining interval drawn.
	AvgMiningWait time.Duration
	// ExecBound reports how many block cycles were execution-bound.
	ExecBound int
}

// blockArtifacts caches one really-executed block's scheduling artifacts.
type blockArtifacts struct {
	out        *chain.ExecOut
	serialSpan uint64
	txs        int
	number     uint64
}

// Session holds the executed blocks of one mode so timelines for many
// thread counts can be simulated without re-executing.
type Session struct {
	cfg  Config
	mode chain.Mode
	arts []blockArtifacts
}

// NewSession really executes cfg.Blocks blocks under mode (committing as it
// goes) and caches the scheduling artifacts.
func NewSession(cfg Config, mode chain.Mode) (*Session, error) {
	if cfg.Validators < 1 {
		return nil, fmt.Errorf("chainsim: need at least 1 validator, got %d", cfg.Validators)
	}
	world, err := workload.BuildWorld(cfg.Workload)
	if err != nil {
		return nil, err
	}
	eng := chain.NewEngine(world.DB, world.Registry, 8,
		chain.WithTracer(cfg.Tracer), chain.WithMetrics(cfg.Metrics),
		chain.WithForensics(cfg.Forensics), chain.WithLedger(cfg.Ledger))
	s := &Session{cfg: cfg, mode: mode}
	for b := 0; b < cfg.Blocks; b++ {
		blockCtx := world.BlockContext()
		txs := world.NextBlock()
		out, err := eng.Execute(mode, blockCtx, txs)
		if err != nil {
			return nil, fmt.Errorf("chainsim: block %d: %w", b, err)
		}
		if _, err := eng.Commit(out.WriteSet); err != nil {
			return nil, err
		}
		serialSpan := uint64(0)
		for _, c := range out.GasCosts {
			serialSpan += c
		}
		s.arts = append(s.arts, blockArtifacts{out: out, serialSpan: serialSpan, txs: len(txs), number: blockCtx.Number})
	}
	return s, nil
}

// PostMortems returns the conflict post-mortems of the session's really
// executed blocks, in execution order. Empty unless the session ran with an
// enabled Forensics collector under a conflict-aware scheduler.
func (s *Session) PostMortems() []*telemetry.PostMortem {
	fx := s.cfg.Forensics
	if !fx.Enabled() {
		return nil
	}
	var pms []*telemetry.PostMortem
	for _, art := range s.arts {
		if pm := fx.PostMortem(int64(art.number)); pm != nil {
			pms = append(pms, pm)
		}
	}
	return pms
}

// Simulate runs the validator-network timeline for a thread count.
func (s *Session) Simulate(threads int) (*Result, error) {
	cfg := s.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	speed := make([]float64, cfg.Validators)
	for i := range speed {
		speed[i] = 0.9 + 0.2*rng.Float64()
	}

	res := &Result{}
	var clock time.Duration
	var sumExec, sumWait time.Duration

	for _, art := range s.arts {
		res.TotalTxs += art.txs
		span, err := art.out.Makespan(s.mode, threads)
		if err != nil {
			return nil, err
		}
		// Calibration: serial seconds per virtual-gas unit, scaled from
		// the configured 10k-block cost.
		secPerGas := cfg.SerialSecondsPer10k / (float64(art.serialSpan) * 10_000 / float64(art.txs))
		miner := rng.Intn(cfg.Validators)
		execTime := time.Duration(float64(span) * secPerGas * speed[miner] * float64(time.Second))

		wait := time.Duration(rng.ExpFloat64() * float64(cfg.MeanBlockInterval))
		sumWait += wait
		sumExec += execTime

		// The next block cannot be built until the miner executed this one
		// and it propagated; mining proceeds concurrently with execution.
		cycle := wait
		if execTime+cfg.PropagationDelay > cycle {
			cycle = execTime + cfg.PropagationDelay
			res.ExecBound++
		}
		clock += cycle
	}

	res.SimulatedTime = clock
	res.Throughput = float64(res.TotalTxs) / clock.Seconds()
	res.AvgExecTime = sumExec / time.Duration(len(s.arts))
	res.AvgMiningWait = sumWait / time.Duration(len(s.arts))
	if math.IsInf(res.Throughput, 0) || math.IsNaN(res.Throughput) {
		return nil, fmt.Errorf("chainsim: degenerate simulated time %v", clock)
	}
	return res, nil
}

// ThroughputSpeedup runs the simulation for every registered scheduler and
// thread count and reports throughput relative to serial execution —
// Fig. 8's y-axis.
func ThroughputSpeedup(cfg Config, threads []int) (map[chain.Mode][]float64, error) {
	serialSess, err := NewSession(cfg, chain.ModeSerial)
	if err != nil {
		return nil, err
	}
	serial, err := serialSess.Simulate(1)
	if err != nil {
		return nil, err
	}
	out := map[chain.Mode][]float64{chain.ModeSerial: make([]float64, len(threads))}
	for i := range threads {
		out[chain.ModeSerial][i] = 1
	}
	for _, m := range chain.Modes() {
		if m == chain.ModeSerial {
			continue // the baseline above
		}
		sess, err := NewSession(cfg, m)
		if err != nil {
			return nil, err
		}
		series := make([]float64, len(threads))
		for i, th := range threads {
			r, err := sess.Simulate(th)
			if err != nil {
				return nil, err
			}
			series[i] = r.Throughput / serial.Throughput
		}
		out[m] = series
	}
	return out, nil
}
