package chainsim_test

import (
	"testing"
	"time"

	"dmvcc/internal/chain"
	"dmvcc/internal/chainsim"
	"dmvcc/internal/workload"
)

func smallCfg() chainsim.Config {
	cfg := chainsim.DefaultConfig()
	w := workload.DefaultConfig()
	w.Users = 400
	w.ERC20s = 24
	w.AMMs = 20
	w.NFTs = 6
	w.ICOs = 3
	w.TxPerBlock = 150
	cfg.Workload = w
	cfg.Blocks = 2
	return cfg
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := smallCfg()
	s1, err := chainsim.NewSession(cfg, chain.ModeDMVCC)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Simulate(8)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := chainsim.NewSession(cfg, chain.ModeDMVCC)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Simulate(8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Throughput != r2.Throughput || r1.SimulatedTime != r2.SimulatedTime {
		t.Errorf("simulation not deterministic: %+v vs %+v", r1, r2)
	}
	if r1.TotalTxs != 300 {
		t.Errorf("total txs = %d", r1.TotalTxs)
	}
	if r1.Throughput <= 0 {
		t.Errorf("throughput = %f", r1.Throughput)
	}
}

func TestMoreThreadsNeverSlower(t *testing.T) {
	cfg := smallCfg()
	sess, err := chainsim.NewSession(cfg, chain.ModeDMVCC)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, th := range []int{1, 2, 4, 8, 16} {
		r, err := sess.Simulate(th)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throughput+1e-9 < prev {
			t.Errorf("throughput regressed at %d threads: %f < %f", th, r.Throughput, prev)
		}
		prev = r.Throughput
	}
}

func TestMiningBoundWhenBlocksTiny(t *testing.T) {
	// With a long mining interval and a tiny block, execution is never the
	// bottleneck (the paper's 12 s / 180-tx setting).
	cfg := smallCfg()
	cfg.Workload.TxPerBlock = 60
	cfg.MeanBlockInterval = 12 * time.Second
	sess, err := chainsim.NewSession(cfg, chain.ModeSerial)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sess.Simulate(1)
	if err != nil {
		t.Fatal(err)
	}
	// Exponential intervals occasionally draw near zero, so allow a
	// minority of execution-bound cycles.
	if r.ExecBound > cfg.Blocks/2 {
		t.Errorf("tiny blocks should be mostly mining-bound, exec-bound %d of %d cycles",
			r.ExecBound, cfg.Blocks)
	}
}

func TestExecBoundWhenBlocksLarge(t *testing.T) {
	// Fast mining and larger blocks shift the bottleneck to execution.
	cfg := smallCfg()
	cfg.MeanBlockInterval = 100 * time.Millisecond
	sess, err := chainsim.NewSession(cfg, chain.ModeSerial)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sess.Simulate(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExecBound == 0 {
		t.Error("large serial blocks with fast mining should be exec-bound")
	}
}

func TestThroughputSpeedupSeries(t *testing.T) {
	cfg := smallCfg()
	cfg.MeanBlockInterval = 200 * time.Millisecond
	series, err := chainsim.ThroughputSpeedup(cfg, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range chain.Modes() {
		if len(series[m]) != 2 {
			t.Fatalf("mode %s: %d points", m, len(series[m]))
		}
	}
	// DMVCC at 8 threads should beat serial when execution-bound.
	if series[chain.ModeDMVCC][1] <= 1.0 {
		t.Errorf("dmvcc@8 speedup = %f, want > 1", series[chain.ModeDMVCC][1])
	}
}
