// Package keccak implements the legacy Keccak-256 hash (pre-NIST padding,
// domain byte 0x01) used throughout Ethereum for storage-slot derivation,
// trie node hashing, and transaction/block identifiers.
package keccak

import "math/bits"

const (
	rate       = 136 // bytes absorbed per permutation for a 256-bit digest
	digestSize = 32
)

var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotation offsets for the rho step, indexed [x][y].
var rotc = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// keccakF1600 applies the 24-round Keccak-f[1600] permutation to the state,
// indexed a[x][y] per the reference specification.
func keccakF1600(a *[5][5]uint64) {
	var c, d [5]uint64
	var b [5][5]uint64
	for round := 0; round < 24; round++ {
		// theta
		for x := 0; x < 5; x++ {
			c[x] = a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
			for y := 0; y < 5; y++ {
				a[x][y] ^= d[x]
			}
		}
		// rho and pi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y][(2*x+3*y)%5] = bits.RotateLeft64(a[x][y], int(rotc[x][y]))
			}
		}
		// chi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x][y] = b[x][y] ^ (^b[(x+1)%5][y] & b[(x+2)%5][y])
			}
		}
		// iota
		a[0][0] ^= roundConstants[round]
	}
}

// Hasher is an incremental Keccak-256 hasher. The zero value is ready to
// use. It implements the write/sum pattern of hash.Hash without the
// interface plumbing this package does not need.
type Hasher struct {
	state [5][5]uint64
	buf   [rate]byte
	n     int
}

// Reset returns the hasher to its initial state.
func (h *Hasher) Reset() {
	*h = Hasher{}
}

// Write absorbs more data into the hash state. It never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		n := copy(h.buf[h.n:], p)
		h.n += n
		p = p[n:]
		if h.n == rate {
			h.absorb()
		}
	}
	return total, nil
}

func (h *Hasher) absorb() {
	for i := 0; i < rate/8; i++ {
		lane := uint64(0)
		for j := 7; j >= 0; j-- {
			lane = lane<<8 | uint64(h.buf[i*8+j])
		}
		x, y := i%5, i/5
		h.state[x][y] ^= lane
	}
	keccakF1600(&h.state)
	h.n = 0
}

// Sum256 finalizes a copy of the state and returns the 32-byte digest; the
// hasher can keep absorbing afterwards.
func (h *Hasher) Sum256() [32]byte {
	c := *h
	// Legacy Keccak multi-rate padding: 0x01 ... 0x80.
	c.buf[c.n] = 0x01
	for i := c.n + 1; i < rate; i++ {
		c.buf[i] = 0
	}
	c.buf[rate-1] |= 0x80
	c.absorb()

	var out [32]byte
	for i := 0; i < digestSize/8; i++ {
		x, y := i%5, i/5
		lane := c.state[x][y]
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(lane >> (8 * j))
		}
	}
	return out
}

// Sum256 returns the Keccak-256 digest of data.
func Sum256(data []byte) [32]byte {
	var h Hasher
	_, _ = h.Write(data)
	return h.Sum256()
}

// Sum256Concat hashes the concatenation of the given byte slices without
// materialising the joined buffer.
func Sum256Concat(parts ...[]byte) [32]byte {
	var h Hasher
	for _, p := range parts {
		_, _ = h.Write(p)
	}
	return h.Sum256()
}
