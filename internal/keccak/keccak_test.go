package keccak

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// Known-answer vectors for legacy Keccak-256 (Ethereum variant).
var vectors = []struct {
	in   string
	want string
}{
	{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
	{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
	{"The quick brown fox jumps over the lazy dog",
		"4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"},
	{"testing", "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02"},
}

func TestVectors(t *testing.T) {
	for _, v := range vectors {
		got := Sum256([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("Sum256(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	f := func(data []byte, cut uint8) bool {
		want := Sum256(data)
		var h Hasher
		k := 0
		if len(data) > 0 {
			k = int(cut) % (len(data) + 1)
		}
		_, _ = h.Write(data[:k])
		_, _ = h.Write(data[k:])
		got := h.Sum256()
		return got == want
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSumIsNonDestructive(t *testing.T) {
	var h Hasher
	_, _ = h.Write([]byte("hello "))
	first := h.Sum256()
	second := h.Sum256()
	if first != second {
		t.Fatal("Sum256 mutated hasher state")
	}
	_, _ = h.Write([]byte("world"))
	got := h.Sum256()
	want := Sum256([]byte("hello world"))
	if got != want {
		t.Errorf("continued hash = %x, want %x", got, want)
	}
}

func TestSumConcat(t *testing.T) {
	a, b, c := []byte("foo"), []byte("bar"), []byte("baz")
	got := Sum256Concat(a, b, c)
	want := Sum256(bytes.Join([][]byte{a, b, c}, nil))
	if got != want {
		t.Errorf("Sum256Concat = %x, want %x", got, want)
	}
}

func TestRateBoundaries(t *testing.T) {
	// Inputs straddling the 136-byte rate exercise the multi-block path and
	// the pad-only block (n == rate-1 puts both pad bytes in one position).
	for _, n := range []int{rate - 2, rate - 1, rate, rate + 1, 2*rate - 1, 2 * rate, 3*rate + 5} {
		data := bytes.Repeat([]byte{0xaa}, n)
		var h Hasher
		_, _ = h.Write(data)
		if got, want := h.Sum256(), Sum256(data); got != want {
			t.Errorf("n=%d: incremental %x != one-shot %x", n, got, want)
		}
	}
}

func TestReset(t *testing.T) {
	var h Hasher
	_, _ = h.Write([]byte("garbage"))
	h.Reset()
	got := h.Sum256()
	if want := Sum256(nil); got != want {
		t.Errorf("after Reset: %x, want %x", got, want)
	}
}

func TestDistinctInputsDistinctDigests(t *testing.T) {
	seen := make(map[[32]byte]string)
	for i := 0; i < 1000; i++ {
		in := []byte{byte(i), byte(i >> 8), 0x42}
		d := Sum256(in)
		if prev, dup := seen[d]; dup {
			t.Fatalf("collision between %x and %x", prev, in)
		}
		seen[d] = string(in)
	}
}

func BenchmarkSum256_32(b *testing.B)  { benchSum(b, 32) }
func BenchmarkSum256_256(b *testing.B) { benchSum(b, 256) }
func BenchmarkSum256_4K(b *testing.B)  { benchSum(b, 4096) }

func benchSum(b *testing.B, n int) {
	data := make([]byte, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
