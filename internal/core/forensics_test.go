package core_test

import (
	"runtime"
	"testing"

	"dmvcc/internal/core"
	"dmvcc/internal/sag"
	"dmvcc/internal/telemetry"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// TestForensicsExplainsEveryAbort runs the unpredicted-write cascade workload
// with a forensics collector attached and checks the accounting contract end
// to end: every abort the scheduler counts has exactly one structured record,
// every record is fully classified, the cascade trees partition the records,
// and the wasted gas attributed to records equals the executor's total.
func TestForensicsExplainsEveryAbort(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	txs := []*types.Transaction{
		call(user(0), indirAddr, 0, "setKey", u256.NewUint64(1), u256.NewUint64(5)),
		call(user(1), indirAddr, 0, "writeAt", u256.NewUint64(1), u256.NewUint64(42)),
	}
	for i := 0; i < 32; i++ {
		txs = append(txs, call(user(2+i%60), indirAddr, 0, "copyTo",
			u256.NewUint64(uint64(5+i)), u256.NewUint64(uint64(6+i))))
	}
	for attempt := 0; attempt < 20; attempt++ {
		db, reg := fixture(t)
		an := sag.NewAnalyzer(reg)
		csags, err := an.AnalyzeBlock(txs, db, blk)
		if err != nil {
			t.Fatal(err)
		}
		fx := telemetry.NewForensics()
		fx.Enable()
		ex := core.NewExecutor(reg, 16)
		ex.SetForensics(fx)
		res, err := ex.ExecuteBlock(db, blk, txs, csags)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Aborts == 0 {
			continue // lucky schedule; retry for a contended one
		}

		recs := fx.AbortRecords(int64(blk.Number))
		if int64(len(recs)) != res.Stats.Aborts {
			t.Fatalf("%d abort records != %d scheduler aborts", len(recs), res.Stats.Aborts)
		}
		var recWasted uint64
		for _, r := range recs {
			if r.Class.String() == "unknown" {
				t.Fatalf("unclassified abort record: %+v", r)
			}
			if r.ItemLabel == "" {
				t.Fatalf("abort record without item label: %+v", r)
			}
			if r.CauseTx < 0 || r.CauseTx >= len(txs) {
				t.Fatalf("abort record with out-of-range cause tx: %+v", r)
			}
			recWasted += r.WastedGas
		}
		if recWasted != res.WastedGas {
			t.Fatalf("record wasted gas %d != executor wasted gas %d", recWasted, res.WastedGas)
		}
		// Stats.MaxIncarnation is defined by the abort records: every abort
		// of tx t advances t by exactly one incarnation, so the highest
		// incarnation reached equals the deepest per-tx abort count — and on
		// a healthy (non-degraded) block it stays below the breaker cap.
		perTxAborts := make(map[int]int64)
		var deepest int64
		for _, r := range recs {
			perTxAborts[r.Tx]++
			if perTxAborts[r.Tx] > deepest {
				deepest = perTxAborts[r.Tx]
			}
		}
		if res.Stats.MaxIncarnation != deepest {
			t.Fatalf("MaxIncarnation = %d, want deepest per-tx abort count %d",
				res.Stats.MaxIncarnation, deepest)
		}
		if res.Stats.Degraded {
			t.Fatalf("healthy workload degraded: %s", res.Stats.DegradeReason)
		}
		if res.Stats.MaxIncarnation >= 64 {
			t.Fatalf("MaxIncarnation %d at the default breaker cap without degrading", res.Stats.MaxIncarnation)
		}

		pm := fx.PostMortem(int64(blk.Number))
		if pm == nil {
			t.Fatal("no post-mortem for the executed block")
		}
		if pm.Aborts != len(recs) || pm.WastedGas != res.WastedGas {
			t.Fatalf("post-mortem aborts/wasted = %d/%d, want %d/%d",
				pm.Aborts, pm.WastedGas, len(recs), res.WastedGas)
		}
		treeAborts := 0
		for _, tree := range pm.Cascades {
			treeAborts += tree.Aborts
		}
		if treeAborts != pm.Aborts {
			t.Fatalf("cascade trees cover %d aborts, want %d", treeAborts, pm.Aborts)
		}
		// The executor must have completed the C-SAG audit for the block, and
		// every abort it recorded must be attributed to a cause tx there.
		if pm.Audit == nil || pm.Audit.Txs != len(txs) {
			t.Fatalf("post-mortem audit = %+v, want one covering %d txs", pm.Audit, len(txs))
		}
		cor := pm.Audit.Correlation
		if got := cor.AbortsCausedByMispredicted + cor.AbortsCausedByPredicted; got != len(recs) {
			t.Fatalf("audit attributes %d aborts to causes, want %d", got, len(recs))
		}
		return
	}
	t.Skip("no aborts observed in 20 attempts; cannot exercise forensics")
}

// TestForensicsCleanBlockAudit pins the other side of the contract: on an
// uncontended block the collector still produces a post-mortem, with zero
// aborts, no cascades, and a perfect-recall audit.
func TestForensicsCleanBlockAudit(t *testing.T) {
	txs := []*types.Transaction{
		call(user(0), tokenAddr, 0, "transfer", user(1).Word(), u256.NewUint64(5)),
		call(user(2), tokenAddr, 0, "transfer", user(3).Word(), u256.NewUint64(7)),
		call(user(4), icoAddr, 100, "buy"),
	}
	db, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	fx := telemetry.NewForensics()
	fx.Enable()
	ex := core.NewExecutor(reg, 4)
	ex.SetForensics(fx)
	res, err := ex.ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Aborts != 0 {
		t.Fatalf("independent txs aborted %d times", res.Stats.Aborts)
	}
	pm := fx.PostMortem(int64(blk.Number))
	if pm == nil {
		t.Fatal("no post-mortem")
	}
	if pm.Aborts != 0 || len(pm.Cascades) != 0 || pm.WastedGas != 0 {
		t.Fatalf("clean block post-mortem = %+v", pm)
	}
	if pm.TotalItems == 0 || len(pm.HotKeys) == 0 {
		t.Fatal("contention profiles not collected")
	}
	if pm.Audit == nil || pm.Audit.MispredictedTxs != 0 {
		t.Fatalf("audit = %+v, want zero mispredictions on the static workload", pm.Audit)
	}
	if pm.Audit.Reads.Recall != 1 || pm.Audit.Writes.Recall != 1 {
		t.Fatalf("audit recall = %v/%v, want 1/1",
			pm.Audit.Reads.Recall, pm.Audit.Writes.Recall)
	}
}

// benchExecuteForensics mirrors benchExecute with a forensics collector
// attached instead of a tracer.
func benchExecuteForensics(b *testing.B, fx *telemetry.Forensics) {
	b.Helper()
	txs := benchTxs()
	db, reg := fixture(b)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		b.Fatal(err)
	}
	ex := core.NewExecutor(reg, 8)
	ex.SetForensics(fx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.ExecuteBlock(db, blk, txs, csags); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForensicsNone is the baseline: no collector attached, the
// Enabled() guard is a nil check.
func BenchmarkForensicsNone(b *testing.B) {
	benchExecuteForensics(b, nil)
}

// BenchmarkForensicsDisabled attaches a collector but leaves it disabled:
// every hook pays one atomic-flag load and nothing else. The contract
// (package doc of internal/telemetry) is that this stays within 2% of
// BenchmarkForensicsNone.
func BenchmarkForensicsDisabled(b *testing.B) {
	benchExecuteForensics(b, telemetry.NewForensics())
}

// BenchmarkForensicsEnabled bounds the cost of full conflict accounting and
// auditing, for comparison (not part of the <2% contract).
func BenchmarkForensicsEnabled(b *testing.B) {
	fx := telemetry.NewForensics()
	fx.Enable()
	b.Cleanup(fx.Reset)
	benchExecuteForensics(b, fx)
}
