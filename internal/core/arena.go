package core

import (
	"sync"

	"dmvcc/internal/sag"
	"dmvcc/internal/state"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// accessorPool recycles accessors across incarnations and blocks. reset()
// clears every reference before an accessor re-enters the pool, so nothing
// from one incarnation (values, code bytes, journal records) can leak into
// the next — the poisoned-arena test pins this.
var accessorPool = sync.Pool{New: func() any { return new(accessor) }}

// getAccessor takes a cleared accessor from the pool; its items/journal/
// snaps/events slices keep the capacity they grew in earlier incarnations.
func (r *run) getAccessor() *accessor {
	return accessorPool.Get().(*accessor)
}

// putAccessor clears and returns an accessor to the pool. Safe once the
// executing goroutine is done with it: accessors are goroutine-local (the
// abort path works on txRuntime and the sequences, never the accessor).
func (r *run) putAccessor(a *accessor) {
	a.reset()
	accessorPool.Put(a)
}

// workerCacheCap bounds a worker cache's entry count so a pathological
// block cannot grow it without limit; past the cap, reads fall through to
// the snapshot uncached.
const workerCacheCap = 1 << 15

// workerCache memoizes committed-snapshot reads for one pool worker across
// a whole block. Committed state is immutable while the block executes, so
// cached values can never go stale — no invalidation protocol, no locking
// (each cache belongs to exactly one worker goroutine). Aborts don't touch
// it either: re-executions re-read the same committed snapshot, and
// in-block writes layer on top through the access sequences. On the trie
// backend this turns repeated cold reads of hot items (token contracts,
// AMM pools) from full trie walks into one map hit.
type workerCache struct {
	vals  map[sag.ItemID]u256.Int
	codes map[types.Address][]byte
}

func newWorkerCache() *workerCache {
	return &workerCache{
		vals:  make(map[sag.ItemID]u256.Int, 256),
		codes: make(map[types.Address][]byte, 16),
	}
}

// value reads id's committed value through the cache.
func (c *workerCache) value(snap state.Reader, id sag.ItemID) u256.Int {
	if v, ok := c.vals[id]; ok {
		return v
	}
	v := snapFor(snap, id)
	if len(c.vals) < workerCacheCap {
		c.vals[id] = v
	}
	return v
}

// codeOf reads addr's committed code through the cache.
func (c *workerCache) codeOf(snap state.Reader, addr types.Address) []byte {
	if code, ok := c.codes[addr]; ok {
		return code
	}
	code := snap.Code(addr)
	if len(c.codes) < workerCacheCap {
		c.codes[addr] = code
	}
	return code
}

// workerCacheFor returns worker wid's snapshot cache, creating it on first
// use. Looked up once per incarnation; the map is tiny (one entry per
// worker goroutine).
func (r *run) workerCacheFor(wid int) *workerCache {
	r.cacheMu.Lock()
	c := r.caches[wid]
	if c == nil {
		if r.caches == nil {
			r.caches = make(map[int]*workerCache, 8)
		}
		c = newWorkerCache()
		r.caches[wid] = c
	}
	r.cacheMu.Unlock()
	return c
}
