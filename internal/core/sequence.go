// Package core implements DMVCC — deterministic multi-version concurrency
// control — the paper's contribution. Each state item has an access
// sequence holding one version per writing transaction (write versioning,
// §IV-D); reads resolve to the closest preceding finished version and block
// on pending ones; commutative increments are stored as order-free deltas;
// writes become visible at release points before the transaction commits
// (early-write visibility, §IV-C); and stale reads trigger cascading aborts
// (§IV-E) that preserve deterministic serializability (Theorem 1).
package core

import (
	"fmt"
	"sort"
	"sync"

	"dmvcc/internal/sag"
	"dmvcc/internal/u256"
)

// entryKind is the access type of one transaction on one item.
type entryKind uint8

// Access kinds, mirroring the paper's ρ/ω/θ plus the commutative ω̄ (delta).
const (
	kindRead      entryKind = iota + 1 // ρ
	kindWrite                          // ω
	kindReadWrite                      // θ
	kindDelta                          // ω̄ (commutative)
)

func (k entryKind) String() string {
	switch k {
	case kindRead:
		return "ρ"
	case kindWrite:
		return "ω"
	case kindReadWrite:
		return "θ"
	case kindDelta:
		return "ω̄"
	default:
		return "?"
	}
}

// entryStatus is the write-part status of an entry ("F" field in Fig. 4).
type entryStatus uint8

const (
	statusPending entryStatus = iota + 1 // not finished ("N")
	statusDone                           // value available
	statusDropped                        // writer aborted or never wrote
)

// entry is one transaction's slot in an access sequence.
type entry struct {
	tx        int
	kind      entryKind
	predicted bool // created from the C-SAG (vs dynamically inserted)

	status   entryStatus
	value    u256.Int // absolute value (ω/θ) or accumulated delta (ω̄)
	writeInc int      // incarnation that produced value
	dropInc  int      // incarnation whose publishes must be ignored (-1 none)

	readDone bool
	readInc  int
}

// victim identifies a transaction incarnation to abort.
type victim struct {
	tx  int
	inc int
}

// sequence is the multi-version access sequence L_I of one state item.
type sequence struct {
	mu      sync.Mutex
	id      sag.ItemID
	entries []*entry // sorted by tx index, at most one per tx
	waiters []chan struct{}
}

func newSequence(id sag.ItemID) *sequence {
	return &sequence{id: id}
}

// find returns the index of the entry for tx, or (insertion point, false).
func (s *sequence) find(tx int) (int, bool) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].tx >= tx })
	if i < len(s.entries) && s.entries[i].tx == tx {
		return i, true
	}
	return i, false
}

// ensureEntry returns the entry for tx, inserting a dynamic one when absent.
func (s *sequence) ensureEntry(tx int, kind entryKind) *entry {
	i, ok := s.find(tx)
	if ok {
		return s.entries[i]
	}
	e := &entry{tx: tx, kind: kind, status: statusPending, dropInc: -1}
	s.entries = append(s.entries, nil)
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
	return e
}

// addPredicted installs a predicted entry from the C-SAG.
func (s *sequence) addPredicted(tx int, kind entryKind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.ensureEntry(tx, kind)
	e.kind = kind
	e.predicted = true
}

// readResult is the outcome of a read resolution attempt.
type readResult uint8

const (
	readOK readResult = iota + 1
	readBlocked
	readNeedSnapshot // resolved, but base comes from the snapshot
)

// tryRead resolves the value transaction tx must observe. snapBase is the
// committed snapshot value of the item (used when no in-block writer
// precedes tx). When the read would block, a wait channel is returned and
// the caller must retry after it closes. On success the reader's entry is
// marked done so later writers know to abort it (Algorithm 3 line 4).
func (s *sequence) tryRead(tx, inc int, snapBase u256.Int, aborted func() bool) (u256.Int, readResult, chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if aborted() {
		// Do not mark entries on behalf of a dead incarnation.
		return u256.Int{}, readBlocked, closedChan
	}

	pos, _ := s.find(tx)
	var deltas u256.Int
	for j := pos - 1; j >= 0; j-- {
		e := s.entries[j]
		if e.status == statusDropped {
			continue
		}
		switch e.kind {
		case kindRead:
			continue
		case kindDelta:
			if e.status == statusPending {
				return u256.Int{}, readBlocked, s.waitChan()
			}
			deltas.Add(&deltas, &e.value)
		case kindWrite, kindReadWrite:
			if e.status == statusPending {
				return u256.Int{}, readBlocked, s.waitChan()
			}
			var val u256.Int
			val.Add(&e.value, &deltas)
			s.markRead(tx, inc)
			return val, readOK, nil
		}
	}
	var val u256.Int
	val.Add(&snapBase, &deltas)
	s.markRead(tx, inc)
	return val, readNeedSnapshot, nil
}

// closedChan is a pre-closed channel for immediate retry paths.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// markRead records a completed read by tx (mutating its entry in place).
func (s *sequence) markRead(tx, inc int) {
	e := s.ensureEntry(tx, kindRead)
	e.readDone = true
	e.readInc = inc
}

// waitChan registers a waiter woken at the next publish/drop on this item.
func (s *sequence) waitChan() chan struct{} {
	ch := make(chan struct{})
	s.waiters = append(s.waiters, ch)
	return ch
}

// wakeAll wakes every registered waiter. Called with s.mu held.
func (s *sequence) wakeAll() {
	for _, ch := range s.waiters {
		close(ch)
	}
	s.waiters = nil
}

// priorWritesPending reports whether any lower-indexed transaction still
// has an unfinished write/delta on this item, returning a wait channel when
// so. Used only by the write-versioning ablation: with versioning disabled,
// a writer must wait for earlier writers like a single-version lock.
func (s *sequence) priorWritesPending(tx int, aborted func() bool) (bool, chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if aborted() {
		return true, closedChan
	}
	pos, _ := s.find(tx)
	for j := pos - 1; j >= 0; j-- {
		e := s.entries[j]
		if e.status == statusPending && e.kind != kindRead {
			return true, s.waitChan()
		}
	}
	return false, nil
}

// versionWrite publishes a version for tx (Algorithm 3): the entry is
// upgraded/inserted, its value set, waiters woken, and the completed reads
// of later transactions that observed an older version are returned as
// abort victims. delta selects ω̄ semantics (deltas accumulate and never
// invalidate other deltas).
func (s *sequence) versionWrite(tx, inc int, val u256.Int, delta bool) []victim {
	s.mu.Lock()
	defer s.mu.Unlock()

	e := s.ensureEntry(tx, kindWrite)
	if e.dropInc == inc {
		// This incarnation was aborted and its versions pre-dropped.
		return nil
	}
	if delta {
		e.kind = kindDelta
		if e.status == statusDone && e.writeInc == inc {
			// Accumulate further contributions from the same incarnation.
			e.value.Add(&e.value, &val)
		} else {
			e.value = val
		}
	} else {
		if e.readDone || e.kind == kindReadWrite {
			e.kind = kindReadWrite
		} else {
			e.kind = kindWrite
		}
		e.value = val
	}
	e.status = statusDone
	e.writeInc = inc

	s.wakeAll()
	// A completed read positioned after this version observed an older one
	// (for deltas: merged without this contribution) — abort it. Delta/delta
	// pairs never invalidate each other, which scanForward honours by
	// skipping ω̄ entries.
	return s.scanForward(tx)
}

// scanForward implements Algorithm 3's abort/grant scan after a publish at
// tx's position: completed reads after it (up to the next write) are stale.
func (s *sequence) scanForward(tx int) []victim {
	pos, ok := s.find(tx)
	start := pos
	if ok {
		start = pos + 1
	}
	var victims []victim
	for j := start; j < len(s.entries); j++ {
		e := s.entries[j]
		if e.status == statusDropped {
			continue
		}
		switch e.kind {
		case kindDelta:
			continue
		case kindRead:
			if e.readDone {
				victims = append(victims, victim{tx: e.tx, inc: e.readInc})
			}
		case kindWrite, kindReadWrite:
			if e.kind == kindReadWrite && e.readDone {
				victims = append(victims, victim{tx: e.tx, inc: e.readInc})
			}
			// Later readers observed (or will observe) this entry's write,
			// not ours; cascading aborts handle them if it dies.
			return victims
		}
	}
	return victims
}

// dropVersion invalidates tx's version (aborted incarnation or a predicted
// write that never materialized): the entry is marked dropped, waiters are
// woken to re-resolve, and stale readers are returned (Algorithm 4, lines
// 9-13).
func (s *sequence) dropVersion(tx, inc int) []victim {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.find(tx)
	if !ok {
		return nil
	}
	e := s.entries[i]
	e.dropInc = inc
	if e.status == statusDone && e.writeInc != inc {
		// A newer incarnation already republished; leave its version alone.
		return nil
	}
	hadValue := e.status == statusDone
	e.status = statusDropped
	s.wakeAll()
	if !hadValue {
		return nil
	}
	return s.scanForward(tx)
}

// resetRead clears a stale read mark after its incarnation aborted, keeping
// future scans from re-targeting the dead incarnation.
func (s *sequence) resetRead(tx, inc int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.find(tx)
	if !ok {
		return
	}
	e := s.entries[i]
	if e.readDone && e.readInc == inc {
		e.readDone = false
	}
}

// finalValue resolves the committed value of the item after all
// transactions finished: the last finished absolute write plus any deltas
// after it; ok is false when nothing in the block wrote the item.
func (s *sequence) finalValue(snapBase u256.Int) (u256.Int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var deltas u256.Int
	wrote := false
	for j := len(s.entries) - 1; j >= 0; j-- {
		e := s.entries[j]
		if e.status != statusDone {
			continue
		}
		switch e.kind {
		case kindDelta:
			deltas.Add(&deltas, &e.value)
			wrote = true
		case kindWrite, kindReadWrite:
			var val u256.Int
			val.Add(&e.value, &deltas)
			return val, true
		}
	}
	if !wrote {
		return u256.Int{}, false
	}
	var val u256.Int
	val.Add(&snapBase, &deltas)
	return val, true
}

// debugString renders the sequence like the paper's Fig. 4 rectangles.
func (s *sequence) debugString() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.id.String() + ":"
	for _, e := range s.entries {
		st := "N"
		switch e.status {
		case statusDone:
			st = "T"
		case statusDropped:
			st = "X"
		}
		out += fmt.Sprintf(" T%d:%s[%s]", e.tx, e.kind, st)
	}
	return out
}
