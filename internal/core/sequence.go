// Package core implements DMVCC — deterministic multi-version concurrency
// control — the paper's contribution. Each state item has an access
// sequence holding one version per writing transaction (write versioning,
// §IV-D); reads resolve to the closest preceding finished version and block
// on pending ones; commutative increments are stored as order-free deltas;
// writes become visible at release points before the transaction commits
// (early-write visibility, §IV-C); and stale reads trigger cascading aborts
// (§IV-E) that preserve deterministic serializability (Theorem 1).
package core

import (
	"fmt"
	"sort"
	"sync"

	"dmvcc/internal/sag"
	"dmvcc/internal/u256"
)

// entryKind is the access type of one transaction on one item.
type entryKind uint8

// Access kinds, mirroring the paper's ρ/ω/θ plus the commutative ω̄ (delta).
const (
	kindRead      entryKind = iota + 1 // ρ
	kindWrite                          // ω
	kindReadWrite                      // θ
	kindDelta                          // ω̄ (commutative)
)

func (k entryKind) String() string {
	switch k {
	case kindRead:
		return "ρ"
	case kindWrite:
		return "ω"
	case kindReadWrite:
		return "θ"
	case kindDelta:
		return "ω̄"
	default:
		return "?"
	}
}

// entryStatus is the write-part status of an entry ("F" field in Fig. 4).
type entryStatus uint8

const (
	statusPending entryStatus = iota + 1 // not finished ("N")
	statusDone                           // value available
	statusDropped                        // writer aborted or never wrote
)

// entry is one transaction's slot in an access sequence.
type entry struct {
	tx        int
	kind      entryKind
	predicted bool // created from the C-SAG (vs dynamically inserted)

	status   entryStatus
	value    u256.Int // absolute value (ω/θ) or accumulated delta (ω̄)
	writeInc int      // incarnation that produced value
	dropInc  int      // incarnation whose publishes must be ignored (-1 none)

	readDone bool
	readInc  int
	// readSrcTx is the transaction whose version the completed read
	// observed (-1 when it resolved from the committed snapshot). Forensics
	// uses it to classify the abort when the read later goes stale.
	readSrcTx int
}

// victim identifies a transaction incarnation to abort, carrying the
// forensic context of the stale read: the item, the invalidating writer's
// incarnation and predictedness, and the version the victim had observed.
type victim struct {
	tx  int
	inc int

	item      sag.ItemID
	writerInc int
	predicted bool // the invalidating entry came from the C-SAG
	readSrc   int  // version the victim observed: writer tx, -1 = snapshot
}

// seqWaiter is one parked transaction registered on a sequence. Wakeups are
// targeted: a mutation of the entry at position t wakes only waiters whose
// transaction sits after t (readerTx > t) — a publish at position k cannot
// change what a reader at or before k observes, so those stay parked.
//
// The waiter also carries the reader's scan state so a woken reader can
// resume from the entry it blocked on instead of rescanning the whole
// prefix: blockedTx is the pending entry it parked on and deltas the ω̄
// contributions already accumulated above it. The cached state is valid
// only while the already-scanned suffix (blockedTx, readerTx) stays
// untouched; a mutation inside that window sets stale and forces a full
// rescan on resume.
type seqWaiter struct {
	readerTx  int
	blockedTx int
	deltas    u256.Int
	resumable bool // read waiters resume; ablation write-stalls always rescan
	ch        chan struct{}
	woken     bool
	stale     bool
}

// sequence is the multi-version access sequence L_I of one state item.
type sequence struct {
	mu      sync.Mutex
	id      sag.ItemID
	entries []entry // sorted by tx index, at most one per tx
	waiters []*seqWaiter

	// onWake, when set, observes each targeted wakeup delivered by notify:
	// (readerTx, blockedTx, mutTx). Called with s.mu held — implementations
	// must be non-blocking (atomic counter bumps only).
	onWake func(readerTx, blockedTx, mutTx int)

	// rec, when enabled, stamps every resolved read, publish and drop into
	// the flight recorder from under s.mu, so the log order is consistent
	// with what concurrent readers of this item actually observed.
	rec *ScheduleRecorder
}

func newSequence(id sag.ItemID) *sequence {
	return &sequence{id: id}
}

// find returns the index of the entry for tx, or (insertion point, false).
func (s *sequence) find(tx int) (int, bool) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].tx >= tx })
	if i < len(s.entries) && s.entries[i].tx == tx {
		return i, true
	}
	return i, false
}

// ensureEntry returns the entry for tx, inserting a dynamic one when absent.
// Entries live in a value slice (no per-entry allocation); the returned
// pointer is valid only until the next insertion, which can only happen
// under s.mu — callers never hold it across an unlock.
func (s *sequence) ensureEntry(tx int, kind entryKind) *entry {
	i, ok := s.find(tx)
	if ok {
		return &s.entries[i]
	}
	s.entries = append(s.entries, entry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = entry{tx: tx, kind: kind, status: statusPending, dropInc: -1}
	return &s.entries[i]
}

// addPredicted installs a predicted entry from the C-SAG.
func (s *sequence) addPredicted(tx int, kind entryKind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.ensureEntry(tx, kind)
	e.kind = kind
	e.predicted = true
}

// readResult is the outcome of a read resolution attempt.
type readResult uint8

const (
	readOK readResult = iota + 1
	readBlocked
	readNeedSnapshot // resolved, but base comes from the snapshot
	readAborted      // the reading incarnation is already dead
)

// tryRead resolves the value transaction tx must observe. snapBase is the
// committed snapshot value of the item (used when no in-block writer
// precedes tx). When the read would block, a registered waiter is returned
// and the caller must retry after its channel closes, passing the waiter
// back as prev so the scan resumes from the entry it blocked on (unless a
// mutation inside the already-scanned window marked it stale). On success
// the reader's entry is marked done so later writers know to abort it
// (Algorithm 3 line 4), and the source the read resolved from is returned
// (writer transaction, or -1 for the committed snapshot).
func (s *sequence) tryRead(tx, inc int, snapBase u256.Int, aborted func() bool, prev *seqWaiter) (u256.Int, readResult, int, *seqWaiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev != nil {
		s.removeWaiter(prev)
	}
	if aborted() {
		// Do not mark entries on behalf of a dead incarnation.
		return u256.Int{}, readAborted, -1, nil
	}

	var deltas u256.Int
	start := -1
	if prev != nil && prev.resumable && !prev.stale {
		// Resume where we parked: the cached deltas cover everything above
		// the blocking entry, so re-examine it and continue downward.
		if i, ok := s.find(prev.blockedTx); ok {
			start = i
			deltas = prev.deltas
		}
	}
	if start < 0 {
		pos, _ := s.find(tx)
		start = pos - 1
	}
	for j := start; j >= 0; j-- {
		e := &s.entries[j]
		if e.status == statusDropped {
			continue
		}
		switch e.kind {
		case kindRead:
			continue
		case kindDelta:
			if e.status == statusPending {
				return u256.Int{}, readBlocked, -1, s.addWaiter(tx, e.tx, deltas, true, prev)
			}
			deltas.Add(&deltas, &e.value)
		case kindWrite, kindReadWrite:
			if e.status == statusPending {
				return u256.Int{}, readBlocked, -1, s.addWaiter(tx, e.tx, deltas, true, prev)
			}
			var val u256.Int
			val.Add(&e.value, &deltas)
			s.markRead(tx, inc, e.tx)
			if s.rec.Enabled() {
				s.rec.Record(OpRead, tx, inc, -1, e.tx, s.id, val)
			}
			return val, readOK, e.tx, nil
		}
	}
	var val u256.Int
	val.Add(&snapBase, &deltas)
	s.markRead(tx, inc, -1)
	if s.rec.Enabled() {
		s.rec.Record(OpRead, tx, inc, -1, -1, s.id, val)
	}
	return val, readNeedSnapshot, -1, nil
}

// markRead records a completed read by tx (mutating its entry in place).
// src is the transaction whose version was observed (-1 = snapshot).
func (s *sequence) markRead(tx, inc, src int) {
	e := s.ensureEntry(tx, kindRead)
	e.readDone = true
	e.readInc = inc
	e.readSrcTx = src
}

// addWaiter registers (or re-registers) a waiter parked on the pending
// entry at blockedTx. The prev waiter object is recycled when available to
// keep repeat parks allocation-free. Called with s.mu held.
func (s *sequence) addWaiter(readerTx, blockedTx int, deltas u256.Int, resumable bool, prev *seqWaiter) *seqWaiter {
	w := prev
	if w == nil {
		w = &seqWaiter{}
	}
	w.readerTx = readerTx
	w.blockedTx = blockedTx
	w.deltas = deltas
	w.resumable = resumable
	w.ch = make(chan struct{})
	w.woken = false
	w.stale = false
	s.waiters = append(s.waiters, w)
	return w
}

// removeWaiter deregisters w. Called with s.mu held.
func (s *sequence) removeWaiter(w *seqWaiter) {
	for i, o := range s.waiters {
		if o == w {
			n := len(s.waiters) - 1
			s.waiters[i] = s.waiters[n]
			s.waiters[n] = nil
			s.waiters = s.waiters[:n]
			return
		}
	}
}

// cancelWaiter deregisters w after its reader aborted instead of retrying.
func (s *sequence) cancelWaiter(w *seqWaiter) {
	if w == nil {
		return
	}
	s.mu.Lock()
	s.removeWaiter(w)
	s.mu.Unlock()
}

// notify targets waiters after the entry at position t changed (publish or
// drop). Only waiters whose blocked scan could observe the change are
// woken: a reader parked on blockedTx with index readerTx stops scanning at
// the first pending entry, so mutations strictly below blockedTx cannot
// unblock it and mutations at or after readerTx cannot affect its value.
// Mutations strictly inside (blockedTx, readerTx) additionally invalidate
// the cached delta prefix. Waiters stay registered (flagged woken) until
// the reader deregisters, so staleness accumulates across multiple
// mutations. Called with s.mu held.
func (s *sequence) notify(t int) {
	for _, w := range s.waiters {
		if t >= w.readerTx || t < w.blockedTx {
			continue
		}
		if t > w.blockedTx {
			w.stale = true
		}
		if !w.woken {
			w.woken = true
			close(w.ch)
			if s.onWake != nil {
				s.onWake(w.readerTx, w.blockedTx, t)
			}
		}
	}
}

// priorWritesPending reports whether any lower-indexed transaction still
// has an unfinished write/delta on this item, returning a registered
// waiter when so. Used only by the write-versioning ablation: with
// versioning disabled, a writer must wait for earlier writers like a
// single-version lock. A (true, nil) return means the caller's incarnation
// is already dead.
func (s *sequence) priorWritesPending(tx int, aborted func() bool, prev *seqWaiter) (bool, *seqWaiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev != nil {
		s.removeWaiter(prev)
	}
	if aborted() {
		return true, nil
	}
	pos, _ := s.find(tx)
	for j := pos - 1; j >= 0; j-- {
		e := &s.entries[j]
		if e.status == statusPending && e.kind != kindRead {
			return true, s.addWaiter(tx, e.tx, u256.Int{}, false, prev)
		}
	}
	return false, nil
}

// versionWrite publishes a version for tx (Algorithm 3): the entry is
// upgraded/inserted, its value set, waiters woken, and the completed reads
// of later transactions that observed an older version are returned as
// abort victims. delta selects ω̄ semantics (deltas accumulate and never
// invalidate other deltas).
func (s *sequence) versionWrite(tx, inc int, val u256.Int, delta bool) []victim {
	s.mu.Lock()
	defer s.mu.Unlock()

	e := s.ensureEntry(tx, kindWrite)
	if e.dropInc == inc {
		// This incarnation was aborted and its versions pre-dropped.
		return nil
	}
	if delta {
		e.kind = kindDelta
		if e.status == statusDone && e.writeInc == inc {
			// Accumulate further contributions from the same incarnation.
			e.value.Add(&e.value, &val)
		} else {
			e.value = val
		}
	} else {
		if e.readDone || e.kind == kindReadWrite {
			e.kind = kindReadWrite
		} else {
			e.kind = kindWrite
		}
		e.value = val
	}
	e.status = statusDone
	e.writeInc = inc

	if s.rec.Enabled() {
		op := OpPublish
		if delta {
			op = OpDelta
		}
		s.rec.Record(op, tx, inc, -1, -1, s.id, val)
	}
	s.notify(tx)
	// A completed read positioned after this version observed an older one
	// (for deltas: merged without this contribution) — abort it. Delta/delta
	// pairs never invalidate each other, which scanForward honours by
	// skipping ω̄ entries.
	return s.scanForward(tx, inc, e.predicted)
}

// scanForward implements Algorithm 3's abort/grant scan after a publish at
// tx's position: completed reads after it (up to the next write) are stale.
// writerInc and predicted describe the invalidating entry; each victim is
// stamped with them plus the version its stale read had observed, giving
// the abort path its forensic context.
func (s *sequence) scanForward(tx, writerInc int, predicted bool) []victim {
	pos, ok := s.find(tx)
	start := pos
	if ok {
		start = pos + 1
	}
	stamp := func(e *entry) victim {
		return victim{
			tx: e.tx, inc: e.readInc,
			item: s.id, writerInc: writerInc, predicted: predicted,
			readSrc: e.readSrcTx,
		}
	}
	var victims []victim
	for j := start; j < len(s.entries); j++ {
		e := &s.entries[j]
		if e.status == statusDropped {
			continue
		}
		// Any completed read after the publish position observed an older
		// version and is stale — whatever the entry's write kind. A predicted
		// ω entry carries a completed read when the analysis missed the read
		// part (stale or corrupted C-SAG) and the transaction read before
		// publishing (the versionWrite upgrade to θ hasn't happened yet); a ω̄
		// entry carries one after degradeRead resolved the delta's true base.
		// Skipping those on kind alone loses the invalidation and commits
		// values computed from stale reads.
		if e.readDone {
			victims = append(victims, stamp(e))
		}
		switch e.kind {
		case kindWrite, kindReadWrite:
			// Later readers observed (or will observe) this entry's write,
			// not ours; cascading aborts handle them if it dies.
			return victims
		}
	}
	return victims
}

// dropVersion invalidates tx's version (aborted incarnation or a predicted
// write that never materialized): the entry is marked dropped, waiters are
// woken to re-resolve, and stale readers are returned (Algorithm 4, lines
// 9-13).
func (s *sequence) dropVersion(tx, inc int) []victim {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Recorded at the top, unconditionally: the replayer gates each
	// dropVersion call, so the log must carry one event per call — even
	// calls that find nothing to invalidate.
	if s.rec.Enabled() {
		s.rec.Record(OpDrop, tx, inc, -1, -1, s.id, u256.Int{})
	}
	i, ok := s.find(tx)
	if !ok {
		return nil
	}
	e := &s.entries[i]
	e.dropInc = inc
	if e.status == statusDone && e.writeInc != inc {
		// A newer incarnation already republished; leave its version alone.
		return nil
	}
	hadValue := e.status == statusDone
	e.status = statusDropped
	s.notify(tx)
	if !hadValue {
		return nil
	}
	return s.scanForward(tx, inc, e.predicted)
}

// resetRead clears a stale read mark after its incarnation aborted, keeping
// future scans from re-targeting the dead incarnation.
func (s *sequence) resetRead(tx, inc int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.find(tx)
	if !ok {
		return
	}
	e := &s.entries[i]
	if e.readDone && e.readInc == inc {
		e.readDone = false
	}
}

// finalValue resolves the committed value of the item after all
// transactions finished: the last finished absolute write plus any deltas
// after it; ok is false when nothing in the block wrote the item.
func (s *sequence) finalValue(snapBase u256.Int) (u256.Int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var deltas u256.Int
	wrote := false
	for j := len(s.entries) - 1; j >= 0; j-- {
		e := &s.entries[j]
		if e.status != statusDone {
			continue
		}
		switch e.kind {
		case kindDelta:
			deltas.Add(&deltas, &e.value)
			wrote = true
		case kindWrite, kindReadWrite:
			var val u256.Int
			val.Add(&e.value, &deltas)
			return val, true
		}
	}
	if !wrote {
		return u256.Int{}, false
	}
	var val u256.Int
	val.Add(&snapBase, &deltas)
	return val, true
}

// debugString renders the sequence like the paper's Fig. 4 rectangles.
func (s *sequence) debugString() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.id.String() + ":"
	for _, e := range s.entries {
		st := "N"
		switch e.status {
		case statusDone:
			st = "T"
		case statusDropped:
			st = "X"
		}
		out += fmt.Sprintf(" T%d:%s[%s]", e.tx, e.kind, st)
	}
	return out
}
