package core_test

import (
	"runtime"
	"testing"

	"dmvcc/internal/core"
	"dmvcc/internal/sag"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// TestStatsExactSingleThread: with one execution slot the pool dispatches
// strictly in index order, so execution is equivalent to serial — exactly n
// incarnations, zero aborts, zero blocked reads, and (since nothing ever
// parks or aborts) zero wake events and requeues. (The old gate semaphore
// admitted goroutines racily and reported hundreds of blocked reads here.)
func TestStatsExactSingleThread(t *testing.T) {
	var txs []*types.Transaction
	for i := 0; i < 24; i++ {
		txs = append(txs, call(user(i), icoAddr, 1000+uint64(i), "buy"))
		txs = append(txs, call(user(i), nftAddr, 0, "mintNFT"))
	}
	db, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewExecutor(reg, 1).ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Executions != int64(len(txs)) {
		t.Errorf("executions = %d, want %d", res.Stats.Executions, len(txs))
	}
	if res.Stats.Aborts != 0 {
		t.Errorf("aborts = %d, want 0 at one thread", res.Stats.Aborts)
	}
	if res.Stats.BlockedReads != 0 {
		t.Errorf("blocked reads = %d, want 0 at one thread", res.Stats.BlockedReads)
	}
	if res.Stats.WakeEvents != 0 {
		t.Errorf("wake events = %d, want 0 at one thread", res.Stats.WakeEvents)
	}
	if res.Stats.Requeues != 0 {
		t.Errorf("requeues = %d, want 0 at one thread", res.Stats.Requeues)
	}
	if res.WastedGas != 0 {
		t.Errorf("wasted gas = %d, want 0 without aborts", res.WastedGas)
	}
}

// TestStatsExecutionsAccountForAborts: every incarnation is either the
// original or a relaunch after an abort — Executions == n + Aborts holds
// exactly under the worker pool at any thread count.
func TestStatsExecutionsAccountForAborts(t *testing.T) {
	txs := []*types.Transaction{
		call(user(0), indirAddr, 0, "setKey", u256.NewUint64(1), u256.NewUint64(5)),
		call(user(1), indirAddr, 0, "writeAt", u256.NewUint64(1), u256.NewUint64(42)),
		call(user(2), indirAddr, 0, "copyTo", u256.NewUint64(5), u256.NewUint64(6)),
		call(user(3), indirAddr, 0, "copyTo", u256.NewUint64(6), u256.NewUint64(7)),
		call(user(4), indirAddr, 0, "copyTo", u256.NewUint64(7), u256.NewUint64(8)),
	}
	for _, threads := range []int{2, 4, 8} {
		stats := runBoth(t, fixture, txs, threads)
		if stats.Executions != int64(len(txs))+stats.Aborts {
			t.Errorf("threads=%d: executions %d != %d txs + %d aborts",
				threads, stats.Executions, len(txs), stats.Aborts)
		}
		// Every abort re-enqueues its victim exactly once.
		if stats.Requeues != stats.Aborts {
			t.Errorf("threads=%d: requeues %d != aborts %d",
				threads, stats.Requeues, stats.Aborts)
		}
	}
}

// TestWastedGasAccountsAbortedIncarnations pins the WastedGas invariant:
// every aborted incarnation contributes at least BaseCost of virtual
// service time — partial progress of mid-flight kills plus the full cost of
// finished-then-aborted runs. The workload is the unpredicted-write chain
// from TestDeepDependentChain, which aborts when worker goroutines really
// interleave; GOMAXPROCS is raised for the test's duration so single-CPU
// runners still preempt mid-transaction, and a few attempts guard against a
// lucky interleaving with zero aborts. (The deterministic accounting rules
// are pinned separately by TestAbortWastedGasFinishedIncarnation.)
func TestWastedGasAccountsAbortedIncarnations(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	txs := []*types.Transaction{
		call(user(0), indirAddr, 0, "setKey", u256.NewUint64(1), u256.NewUint64(5)),
		call(user(1), indirAddr, 0, "writeAt", u256.NewUint64(1), u256.NewUint64(42)),
	}
	for i := 0; i < 32; i++ {
		txs = append(txs, call(user(2+i%60), indirAddr, 0, "copyTo",
			u256.NewUint64(uint64(5+i)), u256.NewUint64(uint64(6+i))))
	}
	for attempt := 0; attempt < 20; attempt++ {
		db, reg := fixture(t)
		an := sag.NewAnalyzer(reg)
		csags, err := an.AnalyzeBlock(txs, db, blk)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.NewExecutor(reg, 16).ExecuteBlock(db, blk, txs, csags)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Aborts == 0 {
			continue // lucky schedule; retry for a contended one
		}
		if want := uint64(res.Stats.Aborts) * core.BaseCost; res.WastedGas < want {
			t.Fatalf("wasted gas %d < %d aborts * BaseCost %d = %d",
				res.WastedGas, res.Stats.Aborts, uint64(core.BaseCost), want)
		}
		return
	}
	t.Skip("no aborts observed in 20 attempts; cannot exercise WastedGas")
}

// TestDeepDependentChain commits the serial root on a long copy chain whose
// head is invalidated by an unpredicted write: however deep the cascade
// reaches at runtime, the worklist abort must recover the whole suffix.
func TestDeepDependentChain(t *testing.T) {
	txs := []*types.Transaction{
		call(user(0), indirAddr, 0, "setKey", u256.NewUint64(1), u256.NewUint64(5)),
		call(user(1), indirAddr, 0, "writeAt", u256.NewUint64(1), u256.NewUint64(42)),
	}
	const chain = 48
	for i := 0; i < chain; i++ {
		txs = append(txs, call(user(2+i%60), indirAddr, 0, "copyTo",
			u256.NewUint64(uint64(5+i)), u256.NewUint64(uint64(6+i))))
	}
	stats := runBoth(t, fixture, txs, 16)
	if stats.Executions != int64(len(txs))+stats.Aborts {
		t.Errorf("executions %d != %d txs + %d aborts", stats.Executions, len(txs), stats.Aborts)
	}
}
