package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dmvcc/internal/evm"
	"dmvcc/internal/fault"
	"dmvcc/internal/sag"
	"dmvcc/internal/state"
	"dmvcc/internal/telemetry"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// closedChan is a pre-closed channel for stale-incarnation fast paths.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// ErrTooManyAborts guards against livelock; it indicates a scheduler bug
// rather than an expected runtime condition.
var ErrTooManyAborts = errors.New("core: transaction exceeded the incarnation limit")

// maxIncarnations bounds re-executions per transaction.
const maxIncarnations = 1000

// Stats aggregates scheduler counters for one block execution.
type Stats struct {
	// Executions counts incarnations started (n transactions = n when no
	// aborts happen).
	Executions int64
	// Aborts counts non-deterministic aborts (stale reads, cascades).
	Aborts int64
	// EarlyPublishes counts writes made visible at release points.
	EarlyPublishes int64
	// DeltaPublishes counts commutative delta versions published.
	DeltaPublishes int64
	// BlockedReads counts reads that had to park on a pending version.
	BlockedReads int64
	// WakeEvents counts targeted wakeups delivered to parked waiters (the
	// PR 2 replacement for broadcast wakeAll; each is one channel close).
	WakeEvents int64
	// Requeues counts aborted transactions re-enqueued on the worker pool
	// for a fresh incarnation.
	Requeues int64
	// DispatchRuns counts batch hand-offs from the ready heap to workers
	// (each is one heap/lock round-trip); DispatchedTxs is the transactions
	// they covered, so DispatchedTxs/DispatchRuns is the mean run length.
	DispatchRuns  int64
	DispatchedTxs int64
	// Panics counts worker panics contained and converted into aborts.
	Panics int64
	// MaxIncarnation is the highest incarnation index any transaction
	// reached (0 when nothing aborted).
	MaxIncarnation int64
	// StallRecoveries counts watchdog forced-recovery rounds.
	StallRecoveries int64
	// Degraded marks a block whose parallel attempt tripped the circuit
	// breaker and fell back to the serial baseline; DegradeReason says why.
	Degraded      bool
	DegradeReason string
}

// RecordMetrics implements telemetry.Source: counters under the "core."
// prefix accumulate across blocks.
func (s Stats) RecordMetrics(r *telemetry.Registry) {
	r.Counter("core.executions").Add(s.Executions)
	r.Counter("core.aborts").Add(s.Aborts)
	r.Counter("core.early_publishes").Add(s.EarlyPublishes)
	r.Counter("core.delta_publishes").Add(s.DeltaPublishes)
	r.Counter("core.blocked_reads").Add(s.BlockedReads)
	r.Counter("core.wake_events").Add(s.WakeEvents)
	r.Counter("core.requeues").Add(s.Requeues)
	r.Counter("core.dispatch_runs").Add(s.DispatchRuns)
	r.Counter("core.dispatched_txs").Add(s.DispatchedTxs)
	r.Counter("core.panics").Add(s.Panics)
	r.Counter("core.stall_recoveries").Add(s.StallRecoveries)
	if s.Degraded {
		r.Counter("core.degraded_blocks").Inc()
	}
	if g := r.Gauge("core.max_incarnation"); s.MaxIncarnation > g.Value() {
		g.Set(s.MaxIncarnation)
	}
}

var _ telemetry.Source = Stats{}

type statCounters struct {
	executions      atomic.Int64
	aborts          atomic.Int64
	early           atomic.Int64
	delta           atomic.Int64
	blocked         atomic.Int64
	wakes           atomic.Int64
	requeues        atomic.Int64
	panics          atomic.Int64
	maxInc          atomic.Int64
	stallRecoveries atomic.Int64
}

func (s *statCounters) addBlocked() { s.blocked.Add(1) }
func (s *statCounters) addEarly()   { s.early.Add(1) }
func (s *statCounters) addDelta()   { s.delta.Add(1) }
func (s *statCounters) addWake()    { s.wakes.Add(1) }

// noteIncarnation tracks the highest incarnation any transaction reached.
func (s *statCounters) noteIncarnation(inc int) {
	for {
		cur := s.maxInc.Load()
		if int64(inc) <= cur || s.maxInc.CompareAndSwap(cur, int64(inc)) {
			return
		}
	}
}

func (s *statCounters) snapshot() Stats {
	return Stats{
		Executions:      s.executions.Load(),
		Aborts:          s.aborts.Load(),
		EarlyPublishes:  s.early.Load(),
		DeltaPublishes:  s.delta.Load(),
		BlockedReads:    s.blocked.Load(),
		WakeEvents:      s.wakes.Load(),
		Requeues:        s.requeues.Load(),
		Panics:          s.panics.Load(),
		MaxIncarnation:  s.maxInc.Load(),
		StallRecoveries: s.stallRecoveries.Load(),
	}
}

// Result is the outcome of executing one block with DMVCC.
type Result struct {
	Receipts []*types.Receipt
	WriteSet *state.WriteSet
	Stats    Stats
	// Traces are the per-transaction dependency traces of the committed
	// incarnations, consumed by the scheduling simulator.
	Traces []*TxTrace
	// WastedGas is the summed virtual service time (ExecCost units) of
	// every aborted incarnation: the partial gas consumed up to the abort
	// for incarnations killed mid-flight — never less than BaseCost per
	// abort, since dispatching alone costs that — and the full execution
	// cost for incarnations aborted after they completed. Invariant:
	// WastedGas >= Stats.Aborts * BaseCost.
	WastedGas uint64
}

// Options toggles DMVCC's design features for ablation studies. The zero
// value enables everything (the full protocol).
type Options struct {
	// DisableEarlyWrite publishes versions only at transaction finish,
	// removing early-write visibility (§IV-C).
	DisableEarlyWrite bool
	// DisableCommutative executes blind increments as ordinary
	// read-modify-writes, removing commutative write merging (§IV-D).
	DisableCommutative bool
	// DisableWriteVersioning makes write-write pairs conflict again: a
	// writer stalls until every earlier writer of the item finished, like a
	// single-version item lock (the behaviour DMVCC's access sequences
	// remove, §IV-D).
	DisableWriteVersioning bool
}

// Executor schedules block execution under DMVCC. It is reusable across
// blocks; each ExecuteBlock call is independent.
type Executor struct {
	reg       *sag.Registry
	threads   int
	opts      Options
	tracer    *telemetry.Tracer
	forensics *telemetry.Forensics
	faults    *fault.Injector
	hard      Hardening
	maxBatch  int // dispatch run-length cap override (0 = default; tests)
	rec       *ScheduleRecorder
	gate      Gate
}

// SetTracer attaches a telemetry tracer to subsequent executions. A nil or
// disabled tracer costs one predicted branch per potential event (see the
// telemetry-disabled overhead benchmark).
func (x *Executor) SetTracer(tr *telemetry.Tracer) { x.tracer = tr }

// SetForensics attaches a conflict-forensics collector to subsequent
// executions: per-item contention profiles, structured abort records, and
// the end-of-block C-SAG accuracy audit. Follows the tracer's cost
// discipline — nil or disabled collectors cost one atomic load per
// potential record (pinned by the forensics-disabled overhead benchmark).
func (x *Executor) SetForensics(fx *telemetry.Forensics) { x.forensics = fx }

// SetFaults attaches a fault injector to subsequent executions (chaos
// testing). A nil injector — the production configuration — costs one
// nil-check per injection point (pinned by BenchmarkFaultDisabled).
func (x *Executor) SetFaults(in *fault.Injector) { x.faults = in }

// SetHardening overrides the failure-containment thresholds (zero-value
// fields keep their defaults; see Hardening).
func (x *Executor) SetHardening(h Hardening) { x.hard = h }

// SetRecorder attaches a schedule flight recorder to subsequent executions.
// A nil or disabled recorder costs one atomic load per potential event
// (pinned by BenchmarkRecorderDisabled).
func (x *Executor) SetRecorder(rc *ScheduleRecorder) { x.rec = rc }

// SetGate attaches a replay gate: every gated scheduler action (dispatch,
// read, publish, drop, abort, commit) waits for its recorded turn before
// performing, forcing the captured interleaving back onto the execution.
// Production runs leave it nil (one nil-check per gated action).
func (x *Executor) SetGate(g Gate) { x.gate = g }

// NewExecutor returns a DMVCC executor running on the given number of
// worker threads (EVM instances bound to cores, per the paper's setup).
func NewExecutor(reg *sag.Registry, threads int) *Executor {
	return NewExecutorOpts(reg, threads, Options{})
}

// NewExecutorOpts is NewExecutor with feature toggles.
func NewExecutorOpts(reg *sag.Registry, threads int, opts Options) *Executor {
	if threads < 1 {
		threads = 1
	}
	return &Executor{reg: reg, threads: threads, opts: opts}
}

// txRuntime is the mutable scheduling record of one transaction.
type txRuntime struct {
	idx  int
	tx   *types.Transaction
	csag *sag.CSAG

	mu        sync.Mutex
	inc       atomic.Int64
	abortCh   chan struct{}
	published []sag.ItemID
	readMarks []sag.ItemID
	started   bool // current incarnation was picked up by a worker
	finished  bool
	receipt   *types.Receipt
	trace     *TxTrace
}

// curInc returns the live incarnation number.
func (rt *txRuntime) curInc() int { return int(rt.inc.Load()) }

// abortChan returns the abort channel for incarnation inc (the current one;
// stale callers receive a closed channel).
func (rt *txRuntime) abortChan(inc int) chan struct{} {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if int(rt.inc.Load()) != inc {
		return closedChan
	}
	return rt.abortCh
}

// noteReadMark records that incarnation inc marked a read on id (so an
// abort can clear the stale mark). The slice is sized from the C-SAG
// prediction on first use; backing arrays are never reused across
// incarnations — the abort path iterates the previous incarnation's slices
// after releasing rt.mu.
func (rt *txRuntime) noteReadMark(inc int, id sag.ItemID) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if int(rt.inc.Load()) == inc {
		if rt.readMarks == nil {
			n := 4
			if c := rt.csag; c != nil {
				n = len(c.Reads) + 2
			}
			rt.readMarks = make([]sag.ItemID, 0, n)
		}
		rt.readMarks = append(rt.readMarks, id)
	}
}

// publish performs a versionWrite on behalf of incarnation inc, recording
// the published item for abort-time cleanup. It fails with ErrAborted if
// the incarnation is no longer current.
func (rt *txRuntime) publish(r *run, inc int, id sag.ItemID, v u256.Int, delta bool) ([]victim, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if int(rt.inc.Load()) != inc {
		return nil, evm.ErrAborted
	}
	if rt.published == nil {
		n := 4
		if c := rt.csag; c != nil {
			n = len(c.Writes) + len(c.Deltas) + 2
		}
		rt.published = make([]sag.ItemID, 0, n)
	}
	rt.published = append(rt.published, id)
	return r.seq(id).versionWrite(rt.idx, inc, v, delta), nil
}

// dropUnperformed marks a predicted write that never happened as dropped.
func (rt *txRuntime) dropUnperformed(r *run, inc int, id sag.ItemID) ([]victim, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if int(rt.inc.Load()) != inc {
		return nil, evm.ErrAborted
	}
	return r.seq(id).dropVersion(rt.idx, inc), nil
}

// complete records the final receipt and trace of incarnation inc.
func (rt *txRuntime) complete(r *run, inc int, receipt *types.Receipt, trace *TxTrace) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if int(rt.inc.Load()) != inc {
		return false
	}
	rt.finished = true
	rt.receipt = receipt
	rt.trace = trace
	if r.rec.Enabled() {
		r.rec.RecordMark(OpCommit, rt.idx, inc)
	}
	return true
}

// seqShardCount stripes the item→sequence index so concurrent accessors of
// unrelated items never contend on one global lock. Must be a power of two.
const seqShardCount = 64

// seqShard is one stripe of the item→sequence map. Sequences are carved
// from a per-shard slab (chunked value array) instead of allocated one by
// one; slab pointers stay valid because chunks are never reallocated, only
// replaced when exhausted.
type seqShard struct {
	mu   sync.RWMutex
	m    map[sag.ItemID]*sequence
	slab []sequence
}

// seqSlabChunk is the slab granularity (sequences per chunk).
const seqSlabChunk = 64

// newSeqLocked carves one sequence from the shard slab. Called with the
// shard write lock held.
func (sh *seqShard) newSeqLocked(id sag.ItemID) *sequence {
	if len(sh.slab) == 0 {
		sh.slab = make([]sequence, seqSlabChunk)
	}
	s := &sh.slab[0]
	sh.slab = sh.slab[1:]
	s.id = id
	return s
}

// shardIndex hashes an ItemID onto a shard (FNV-1a over the kind, the
// address and the slot bytes that actually vary: storage slots are usually
// small integers or hash outputs, so the tail bytes discriminate).
func shardIndex(id sag.ItemID) uint32 {
	h := uint32(2166136261)
	h = (h ^ uint32(id.Kind)) * 16777619
	for _, b := range id.Addr {
		h = (h ^ uint32(b)) * 16777619
	}
	h = (h ^ uint32(id.Slot[0])) * 16777619
	h = (h ^ uint32(id.Slot[15])) * 16777619
	h = (h ^ uint32(id.Slot[30])) * 16777619
	h = (h ^ uint32(id.Slot[31])) * 16777619
	return h & (seqShardCount - 1)
}

// run is the state of one in-flight block execution.
type run struct {
	x     *Executor
	reg   *sag.Registry
	snap  state.Reader
	block evm.BlockContext
	rts   []*txRuntime
	sched *pool
	wg    sync.WaitGroup

	shards [seqShardCount]seqShard

	codeMu sync.Mutex
	codes  map[types.Hash][]byte

	opts      Options
	tracer    *telemetry.Tracer
	forensics *telemetry.Forensics
	faults    *fault.Injector
	hard      Hardening
	rec       *ScheduleRecorder
	gate      Gate

	stats  statCounters
	wasted atomic.Uint64
	errMu  sync.Mutex
	err    error

	// Failure containment (see harden.go): progress feeds the stall
	// watchdog; cancelled flags a circuit-breaker drain (aborts stop
	// re-enqueueing, fresh dispatches return at entry); reason is the trip
	// cause.
	progress  atomic.Int64
	cancelled atomic.Bool
	reasonMu  sync.Mutex
	reason    string

	// Per-worker committed-snapshot read caches (see workerCache).
	cacheMu sync.Mutex
	caches  map[int]*workerCache
}

// seq returns (creating on demand) the access sequence of id.
func (r *run) seq(id sag.ItemID) *sequence {
	sh := &r.shards[shardIndex(id)]
	sh.mu.RLock()
	s, ok := sh.m[id]
	sh.mu.RUnlock()
	if ok {
		return s
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok = sh.m[id]; ok {
		return s
	}
	s = sh.newSeqLocked(id)
	s.onWake = r.noteWake
	s.rec = r.rec
	sh.m[id] = s
	return s
}

// noteWake counts a targeted wakeup. Invoked under the sequence lock, so it
// only bumps an atomic.
func (r *run) noteWake(readerTx, blockedTx, mutTx int) { r.stats.addWake() }

// forEachSeq visits every sequence (single-threaded commit phase only).
func (r *run) forEachSeq(fn func(id sag.ItemID, s *sequence)) {
	for i := range r.shards {
		for id, s := range r.shards[i].m {
			fn(id, s)
		}
	}
}

// storeCode keeps deployed code bytes addressable by hash.
func (r *run) storeCode(code []byte) types.Hash {
	h := types.Keccak(code)
	r.codeMu.Lock()
	r.codes[h] = code
	r.codeMu.Unlock()
	return h
}

// codeOf resolves code bytes deployed earlier in this block.
func (r *run) codeOf(h types.Hash) []byte {
	r.codeMu.Lock()
	defer r.codeMu.Unlock()
	return r.codes[h]
}

// fail records the first fatal scheduler error and cancels the run: without
// the drain, readers parked on the failed transaction's never-published
// predicted writes would wait forever and wg.Wait would never return (the
// pre-hardening goroutine leak).
func (r *run) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	if r.cancelled.CompareAndSwap(false, true) {
		r.drainAll(telemetry.AbortForced)
	}
}

// abortWork is one worklist entry of a cascade: the victim incarnation, the
// transaction whose publish (or own abort) invalidated it, and the parent
// victim within the cascade tree (-1 for the root).
type abortWork struct {
	v      victim
	cause  int
	parent int
}

// abort implements Algorithm 4 plus cascade processing: each victim's
// incarnation is retired, its published versions dropped (their stale
// readers joining the worklist in turn), its read marks cleared, and a
// fresh incarnation re-enqueued on the scheduler. The cascade is processed
// iteratively off a worklist, so an arbitrarily deep dependency chain costs
// constant goroutine stack. cause is the transaction whose publish
// triggered the first victim; cascading victims are attributed to the
// victim whose dropped versions they had read.
func (r *run) abort(first victim, cause int) {
	r.abortClassed(first, cause, 0)
}

// abortClassed is abort with a forced root classification (forced aborts:
// fault injection, watchdog recovery, breaker drains); rootClass 0 derives
// the class from the stale read's provenance as usual.
func (r *run) abortClassed(first victim, cause int, rootClass telemetry.AbortClass) {
	work := []abortWork{{v: first, cause: cause, parent: -1}}
	fx := r.forensics
	cascade := -1 // forensic cascade id, allocated on the first real victim
	for len(work) > 0 {
		w := work[len(work)-1]
		work = work[:len(work)-1]
		v := w.v

		rt := r.rts[v.tx]
		if g := r.gate; g != nil {
			// Replay: claim the victim's recorded abort slot before retiring
			// it. A false return means the incarnation is already retired
			// (a concurrent cascade won) — same outcome as the inc check.
			if !g.Await(OpAbort, v.tx, v.inc, sag.ItemID{}, func() bool { return rt.curInc() != v.inc }) {
				continue
			}
		}
		rt.mu.Lock()
		if int(rt.inc.Load()) != v.inc {
			rt.mu.Unlock()
			if g := r.gate; g != nil {
				g.Done()
			}
			continue // already re-incarnated
		}
		published := rt.published
		readMarks := rt.readMarks
		started := rt.started
		finished := rt.finished
		receipt := rt.receipt
		oldInc := v.inc
		newInc := oldInc + 1
		rt.inc.Store(int64(newInc))
		close(rt.abortCh)
		rt.abortCh = make(chan struct{})
		rt.published = nil
		rt.readMarks = nil
		rt.started = false
		rt.finished = false
		rt.receipt = nil
		if r.rec.Enabled() {
			r.rec.Record(OpAbort, v.tx, v.inc, -1, w.cause, v.item, u256.Int{})
		}
		rt.mu.Unlock()
		if g := r.gate; g != nil {
			g.Done()
		}

		r.stats.aborts.Add(1)
		r.stats.noteIncarnation(newInc)
		r.noteProgress()
		var wasted uint64
		if finished && receipt != nil {
			// The incarnation had fully executed; all of its work is wasted.
			// (Incarnations killed mid-flight account their partial gas
			// themselves when they observe the abort.)
			wasted = ExecCost(receipt.GasUsed, evm.IntrinsicGas(rt.tx.Data))
			r.noteWasted(wasted)
		}
		if tr := r.tracer; tr.Enabled() {
			tr.Emit(telemetry.EvAbort, v.tx, oldInc, -1, sag.ItemID{}, w.cause)
		}
		if fx.Enabled() {
			// One record per retired incarnation, emitted at the same site
			// that bumps Stats.Aborts, so records always account for 100%
			// of the counter. Roots are classified from the stale read's
			// provenance; worklist descendants are cascade collateral.
			if cascade < 0 {
				cascade = fx.NextCascade()
			}
			class := telemetry.AbortCascade
			if w.parent < 0 {
				switch {
				case rootClass != 0:
					class = rootClass
				case !v.predicted:
					class = telemetry.AbortUnpredictedWrite
				case v.readSrc < 0:
					class = telemetry.AbortSnapshotStale
				default:
					class = telemetry.AbortStaleVersion
				}
			}
			fx.RecordAbort(telemetry.AbortRecord{
				Tx: v.tx, Inc: oldInc,
				Cascade: cascade, Parent: w.parent,
				CauseTx: w.cause, WriterInc: v.writerInc,
				Item: v.item, ReadSrcTx: v.readSrc,
				Class: class, WastedGas: wasted,
			})
		}

		// Drop visible writes; push cascading victims onto the worklist.
		// Each drop is individually gated: cleanup must interleave with
		// other transactions' reads exactly as captured (dead is nil — the
		// incarnation is already retired, the drops must always perform).
		for _, id := range published {
			if g := r.gate; g != nil {
				g.Await(OpDrop, v.tx, oldInc, id, nil)
			}
			cvs := r.seq(id).dropVersion(v.tx, oldInc)
			if g := r.gate; g != nil {
				g.Done()
			}
			for _, cv := range cvs {
				work = append(work, abortWork{v: cv, cause: v.tx, parent: v.tx})
			}
		}
		for _, id := range readMarks {
			r.seq(id).resetRead(v.tx, oldInc)
		}

		if r.cancelled.Load() {
			continue // run is being drained; nothing relaunches
		}
		if limit := r.hard.MaxTxIncarnations; limit > 0 && newInc >= limit {
			r.trip(fmt.Sprintf("tx %d reached the incarnation cap (%d)", v.tx, limit))
			continue
		}
		if newInc >= maxIncarnations {
			r.fail(fmt.Errorf("%w: tx %d", ErrTooManyAborts, v.tx))
			continue
		}
		if !started {
			// The retired incarnation was still queued: its pending pool
			// dispatch will pick up the new incarnation. Requeueing too would
			// double-dispatch and run the same incarnation twice concurrently
			// (forced drains are the only aborters that hit unstarted txs).
			continue
		}
		// Relaunch: re-enqueue on the worker pool (no goroutine spawn).
		r.stats.requeues.Add(1)
		r.wg.Add(1)
		r.sched.enqueue(v.tx)
	}
}

// runIncarnation runs one incarnation of a transaction to completion or
// abort. Invoked by pool workers; the caller holds an execution slot for
// the whole call (minus parked stretches, which yield it). worker is the
// stable identity of the executing pool goroutine (telemetry track id).
func (r *run) runIncarnation(rt *txRuntime, worker int) {
	defer r.wg.Done()
	if r.cancelled.Load() {
		return // run is being drained; don't start new work
	}
	rt.mu.Lock()
	inc := int(rt.inc.Load())
	rt.started = true
	if r.rec.Enabled() {
		r.rec.Record(OpDispatch, rt.idx, inc, worker, -1, sag.ItemID{}, u256.Int{})
	}
	rt.mu.Unlock()
	if g := r.gate; g != nil {
		// Replay: wait for this incarnation's recorded dispatch turn. A
		// false return means it was retired while queued — the aborter
		// already arranged the successor's dispatch, so just return.
		if !g.Await(OpDispatch, rt.idx, inc, sag.ItemID{}, func() bool { return rt.curInc() != inc }) {
			return
		}
		g.Done()
	}
	var acc *accessor
	// Panic containment: a panicking opcode handler (or an injected
	// fault.WorkerPanic) must not kill the pool worker or hang wg.Wait; the
	// incarnation is retired through the abort path and relaunched.
	defer func() {
		if p := recover(); p != nil {
			r.containPanic(rt, inc, acc, p)
		}
		if acc != nil {
			r.putAccessor(acc)
		}
	}()
	if in := r.faults; in.Enabled() {
		if d := in.DelayFor(fault.ExecDelay, int64(r.block.Number), rt.idx, inc); d > 0 {
			// Interruptible: a forced abort (watchdog, breaker) wakes the
			// sleeper instead of waiting the delay out.
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-rt.abortChan(inc):
				t.Stop()
			}
		}
	}
	r.stats.executions.Add(1)
	acc = newAccessor(r, rt, inc)
	acc.worker = worker
	acc.snapCache = r.workerCacheFor(worker)
	if tr := r.tracer; tr.Enabled() {
		tr.Emit(telemetry.EvDispatch, rt.idx, inc, worker, sag.ItemID{}, -1)
	}

	receipt, err := evm.ApplyTransaction(acc, r.block, rt.tx, rt.idx, acc.hook)
	if err != nil {
		if errors.Is(err, evm.ErrAborted) {
			// Work thrown away with this incarnation: the partial gas consumed
			// up to the abort, floored at the dispatch cost.
			w := wastedOf(acc)
			r.noteWasted(w)
			if fx := r.forensics; fx.Enabled() {
				fx.AttributeWasted(rt.idx, inc, w)
			}
			return // the aborter relaunches
		}
		r.fail(fmt.Errorf("core: tx %d: %w", rt.idx, err))
		return
	}
	if !acc.finish(receipt) {
		// Aborted during finish; relaunch in flight. The incarnation never
		// reached complete(), so the abort path did not account its work.
		w := wastedOf(acc)
		r.noteWasted(w)
		if fx := r.forensics; fx.Enabled() {
			fx.AttributeWasted(rt.idx, inc, w)
		}
		return
	}
	r.noteProgress()
	if tr := r.tracer; tr.Enabled() {
		tr.Emit(telemetry.EvCommit, rt.idx, inc, worker, sag.ItemID{}, -1)
	}
}

// ExecuteBlock runs the transactions of a block in parallel under DMVCC
// and returns the receipts (in block order), the net write set ready for
// DB.Commit, and scheduler statistics. csags may contain nils (missing
// SAGs are handled fully dynamically, per the paper's workflow).
func (x *Executor) ExecuteBlock(snap state.Reader, block evm.BlockContext, txs []*types.Transaction, csags []*sag.CSAG) (*Result, error) {
	r := &run{
		x:         x,
		reg:       x.reg,
		snap:      snap,
		block:     block,
		codes:     make(map[types.Hash][]byte),
		opts:      x.opts,
		tracer:    x.tracer,
		forensics: x.forensics,
		faults:    x.faults,
		hard:      x.hard.withDefaults(),
		rec:       x.rec,
		gate:      x.gate,
	}
	if fx := x.forensics; fx.Enabled() {
		fx.BeginBlock(int64(block.Number), len(txs))
	}
	if in := x.faults; in.Enabled() {
		// C-SAG corruption faults: deterministically drop predicted entries
		// (deep copies; the caller's graphs are never touched).
		csags = fault.CorruptCSAGs(in, int64(block.Number), csags)
	}
	// One contiguous slab for the runtimes: n pointer-stable records in a
	// single allocation instead of n boxes.
	slab := make([]txRuntime, len(txs))
	r.rts = make([]*txRuntime, len(txs))
	for i, tx := range txs {
		var c *sag.CSAG
		if i < len(csags) {
			c = csags[i]
		}
		rt := &slab[i]
		rt.idx = i
		rt.tx = tx
		rt.csag = c
		rt.abortCh = make(chan struct{})
		r.rts[i] = rt
	}

	// Pre-size the sequence shards from the C-SAG predicted access counts
	// (repeat items across transactions overestimate, which is fine), then
	// initialize the access sequences (Algorithm 1 line 1).
	var sizes [seqShardCount]int
	for _, rt := range r.rts {
		if rt.csag == nil {
			continue
		}
		for id := range rt.csag.Reads {
			sizes[shardIndex(id)]++
		}
		for id := range rt.csag.Writes {
			sizes[shardIndex(id)]++
		}
		for id := range rt.csag.Deltas {
			sizes[shardIndex(id)]++
		}
	}
	for i := range r.shards {
		r.shards[i].m = make(map[sag.ItemID]*sequence, sizes[i])
	}
	for i, rt := range r.rts {
		if rt.csag == nil {
			continue
		}
		for id := range rt.csag.Reads {
			r.seq(id).addPredicted(i, kindRead)
		}
		for id := range rt.csag.Writes {
			k := kindWrite
			if _, alsoRead := rt.csag.Reads[id]; alsoRead {
				k = kindReadWrite
			}
			r.seq(id).addPredicted(i, k)
		}
		for id := range rt.csag.Deltas {
			r.seq(id).addPredicted(i, kindDelta)
		}
	}

	// Execution phase: transactions flow index-ordered through a bounded
	// worker pool (the paper's N EVM instances); aborts re-enqueue.
	r.sched = newPool(x.threads, func(idx, worker int) { r.runIncarnation(r.rts[idx], worker) })
	if x.maxBatch > 0 {
		r.sched.maxBatch = x.maxBatch
	}
	r.wg.Add(len(txs))
	stopWatchdog := r.startWatchdog()
	r.sched.enqueueAll(len(txs))
	r.wg.Wait()
	stopWatchdog()
	r.sched.shutdown()

	if r.err != nil {
		return nil, r.err
	}
	if r.cancelled.Load() {
		// The circuit breaker tripped mid-flight: every live incarnation was
		// drained and its versions discarded. Degrade to the serial baseline
		// (or surface the trip when fallback is disabled).
		reason := r.tripReason()
		if reason == "" {
			reason = "cancelled"
		}
		if r.hard.DisableFallback {
			return nil, fmt.Errorf("%w: %s", ErrCircuitBreaker, reason)
		}
		return r.degradeToSerial(reason)
	}

	// Commit phase: flush the last version of every sequence (Algorithm 1
	// line 20).
	ws := state.NewWriteSet()
	r.forEachSeq(func(id sag.ItemID, s *sequence) {
		base := snapFor(snap, id)
		val, wrote := s.finalValue(base)
		if !wrote {
			return
		}
		switch id.Kind {
		case sag.KindStorage:
			ws.SetStorage(id.Addr, id.Slot, val)
		case sag.KindBalance:
			ws.Balances[id.Addr] = val
		case sag.KindNonce:
			ws.Nonces[id.Addr] = val.Uint64()
		case sag.KindCode:
			if code := r.codeOf(types.HashFromWord(val)); code != nil {
				ws.Codes[id.Addr] = code
			}
		}
	})

	receipts := make([]*types.Receipt, len(txs))
	traces := make([]*TxTrace, len(txs))
	for i, rt := range r.rts {
		rt.mu.Lock()
		receipts[i] = rt.receipt
		traces[i] = rt.trace
		rt.mu.Unlock()
		if receipts[i] == nil {
			return nil, fmt.Errorf("core: tx %d finished without a receipt", i)
		}
	}
	if fx := x.forensics; fx.Enabled() {
		// Score the C-SAG predictions against the committed access logs and
		// attach the audit to the block's forensics. Entirely off the hot
		// path: both inputs already exist (predictions from the analysis,
		// actual sets from the committed traces).
		fx.CompleteBlock(int64(block.Number), auditPredictions(len(txs), csags), auditAccessLogs(traces, receipts))
	}
	return &Result{
		Receipts:  receipts,
		WriteSet:  ws,
		Stats:     r.statsSnapshot(),
		Traces:    traces,
		WastedGas: r.wasted.Load(),
	}, nil
}

// statsSnapshot materializes the block's Stats, folding in the worker
// pool's dispatch telemetry.
func (r *run) statsSnapshot() Stats {
	s := r.stats.snapshot()
	if r.sched != nil {
		s.DispatchRuns, s.DispatchedTxs = r.sched.runStats()
	}
	return s
}

// snapFor reads an item's committed value from the snapshot.
func snapFor(snap state.Reader, id sag.ItemID) u256.Int {
	switch id.Kind {
	case sag.KindStorage:
		return snap.Storage(id.Addr, id.Slot)
	case sag.KindBalance:
		return snap.Balance(id.Addr)
	case sag.KindNonce:
		return u256.NewUint64(snap.Nonce(id.Addr))
	default:
		return u256.Int{}
	}
}
