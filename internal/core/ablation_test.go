package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dmvcc/internal/baseline"
	"dmvcc/internal/core"
	"dmvcc/internal/minisol"
	"dmvcc/internal/sag"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// runVariant executes txs under DMVCC with the given options and returns
// the committed root.
func runVariant(t *testing.T, opts core.Options, txs []*types.Transaction, threads int) types.Hash {
	t.Helper()
	db, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewExecutorOpts(reg, threads, opts).ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	root, err := db.Commit(res.WriteSet)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestAblationVariantsStayCorrect: disabling features must never change the
// committed state — only the schedule.
func TestAblationVariantsStayCorrect(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			var txs []*types.Transaction
			for i := 0; i < 30; i++ {
				switch r.Intn(4) {
				case 0:
					txs = append(txs, call(user(r.Intn(64)), tokenAddr, 0, "transfer",
						user(r.Intn(64)).Word(), u256.NewUint64(uint64(r.Intn(12_000)))))
				case 1:
					txs = append(txs, call(user(r.Intn(64)), icoAddr, uint64(1+r.Intn(100)), "buy"))
				case 2:
					txs = append(txs, call(user(r.Intn(64)), nftAddr, 0, "mintNFT"))
				case 3:
					txs = append(txs, call(user(r.Intn(64)), indirAddr, 0, "writeAt",
						u256.NewUint64(uint64(r.Intn(3))), u256.NewUint64(uint64(r.Intn(500)))))
				}
			}
			dbS, _ := fixture(t)
			serial, err := baseline.ExecuteSerial(dbS, blk, txs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := dbS.Commit(serial.WriteSet)
			if err != nil {
				t.Fatal(err)
			}
			variants := []core.Options{
				{},
				{DisableEarlyWrite: true},
				{DisableCommutative: true},
				{DisableWriteVersioning: true},
				{DisableEarlyWrite: true, DisableCommutative: true, DisableWriteVersioning: true},
			}
			for vi, opts := range variants {
				if got := runVariant(t, opts, txs, 4); got != want {
					t.Errorf("variant %d (%+v) diverged from serial", vi, opts)
				}
			}
		})
	}
}

// TestMidBlockDeployment: a contract created inside the block is callable
// by later transactions of the same block.
func TestMidBlockDeployment(t *testing.T) {
	compiled, err := minisol.Compile(`
contract Echo {
    uint stored;
    function set(uint v) public { stored = v; }
    function get() public view returns (uint) { return stored; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	deployer := user(0)
	created := types.CreateAddress(deployer, 0)
	txs := []*types.Transaction{
		{From: deployer, Create: true, Gas: 5_000_000, Data: compiled.Code},
		{From: user(1), To: created, Gas: 1_000_000, Data: minisol.CallData("set", u256.NewUint64(321))},
	}
	runBoth(t, fixture, txs, 4)
	// Verify the deployed state on a fresh run.
	db, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewExecutor(reg, 4).ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit(res.WriteSet); err != nil {
		t.Fatal(err)
	}
	if got := db.Storage(created, types.Hash{}); got.Uint64() != 321 {
		t.Errorf("deployed contract slot0 = %s, want 321", got.Hex())
	}
	if len(db.Code(created)) == 0 {
		t.Error("created contract has no code after commit")
	}
}

// TestTracesPopulated: the dependency traces the simulator consumes must be
// present and internally consistent.
func TestTracesPopulated(t *testing.T) {
	txs := []*types.Transaction{
		call(user(0), tokenAddr, 0, "transfer", user(1).Word(), u256.NewUint64(10)),
		call(user(1), tokenAddr, 0, "transfer", user(2).Word(), u256.NewUint64(10)),
	}
	db, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewExecutor(reg, 2).ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 2 {
		t.Fatalf("%d traces", len(res.Traces))
	}
	for i, tr := range res.Traces {
		if tr == nil || tr.Gas == 0 {
			t.Fatalf("trace %d empty", i)
		}
		if len(tr.Events) == 0 {
			t.Fatalf("trace %d has no events", i)
		}
		prev := uint64(0)
		for _, e := range tr.Events {
			if e.Offset > tr.Gas {
				t.Errorf("trace %d event offset %d beyond gas %d", i, e.Offset, tr.Gas)
			}
			if e.Offset+1 < prev { // allow equal / tiny jitter at finish
				t.Errorf("trace %d offsets not monotone: %d after %d", i, e.Offset, prev)
			}
			prev = e.Offset
		}
	}
}

// TestEthTransferTraceCost: plain transfers carry only the base virtual
// cost (the paper executes them without an EVM instance).
func TestEthTransferTraceCost(t *testing.T) {
	txs := []*types.Transaction{
		{From: user(0), To: user(1), Value: u256.NewUint64(5), Gas: 21_000},
	}
	db, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewExecutor(reg, 2).ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Traces[0].Gas; got != core.BaseCost {
		t.Errorf("plain transfer virtual cost = %d, want BaseCost %d", got, core.BaseCost)
	}
}

// TestStressDeterminism hammers the scheduler with many seeds, thread
// counts, and contention mixes; every run must commit the serial root.
// Skipped under -short.
func TestStressDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for seed := int64(100); seed < 120; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			var txs []*types.Transaction
			n := 40 + r.Intn(80)
			hotUser := user(r.Intn(8)) // concentrate some traffic
			for i := 0; i < n; i++ {
				from := user(r.Intn(64))
				if r.Intn(3) == 0 {
					from = hotUser
				}
				switch r.Intn(7) {
				case 0:
					txs = append(txs, &types.Transaction{
						From: from, To: user(r.Intn(64)),
						Value: u256.NewUint64(uint64(r.Intn(100_000))), Gas: 21_000,
					})
				case 1, 2:
					txs = append(txs, call(from, tokenAddr, 0, "transfer",
						hotUser.Word(), u256.NewUint64(uint64(r.Intn(20_000)))))
				case 3:
					txs = append(txs, call(from, icoAddr, uint64(1+r.Intn(1000)), "buy"))
				case 4:
					txs = append(txs, call(from, nftAddr, 0, "mintNFT"))
				case 5:
					txs = append(txs, call(from, indirAddr, 0, "setKey",
						u256.NewUint64(uint64(r.Intn(2))), u256.NewUint64(uint64(r.Intn(6)))))
				case 6:
					txs = append(txs, call(from, indirAddr, 0, "copyTo",
						u256.NewUint64(uint64(r.Intn(6))), u256.NewUint64(uint64(r.Intn(6)))))
				}
			}
			threads := 1 + r.Intn(16)
			runBoth(t, fixture, txs, threads)
		})
	}
}
