package core

import (
	"sync"
	"testing"

	"dmvcc/internal/sag"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
	"dmvcc/internal/workload"
)

// execWithBatch runs one deterministic high-contention block through an
// executor whose dispatch run-length cap is maxBatch and returns the
// committed root plus stats. Each call builds its own world so commits
// never interfere.
func execWithBatch(t *testing.T, threads, maxBatch int) (types.Hash, Stats) {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.TxPerBlock = 96
	cfg.Seed = 7
	world, err := workload.BuildWorld(cfg.HighContention())
	if err != nil {
		t.Fatal(err)
	}
	blockCtx := world.BlockContext()
	txs := world.NextBlock()
	an := sag.NewAnalyzer(world.Registry)
	csags, err := an.AnalyzeBlock(txs, world.DB, blockCtx)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(world.Registry, threads)
	ex.maxBatch = maxBatch
	res, err := ex.ExecuteBlock(world.DB, blockCtx, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	root, err := world.DB.Commit(res.WriteSet)
	if err != nil {
		t.Fatal(err)
	}
	return root, res.Stats
}

// TestBatchDispatchDeterminism: at one thread, handing workers batches must
// be observationally identical to single-transaction dispatch — same
// execution/abort/publish counters, same committed root. Only the dispatch
// telemetry may differ (that is the point of batching).
func TestBatchDispatchDeterminism(t *testing.T) {
	rootSingle, single := execWithBatch(t, 1, 1)
	rootBatched, batched := execWithBatch(t, 1, defaultMaxBatch)

	if rootSingle != rootBatched {
		t.Fatalf("roots diverge: single-tx dispatch %s, batched %s", rootSingle, rootBatched)
	}
	type observable struct {
		executions, aborts, early, delta, blocked, requeues int64
	}
	obs := func(s Stats) observable {
		return observable{s.Executions, s.Aborts, s.EarlyPublishes, s.DeltaPublishes, s.BlockedReads, s.Requeues}
	}
	if obs(single) != obs(batched) {
		t.Errorf("stats diverge at 1 thread: single %+v, batched %+v", obs(single), obs(batched))
	}
	if single.DispatchRuns != single.DispatchedTxs {
		t.Errorf("maxBatch=1 dispatched %d txs in %d runs, want one tx per run",
			single.DispatchedTxs, single.DispatchRuns)
	}
	if batched.DispatchRuns >= batched.DispatchedTxs {
		t.Errorf("batched dispatch made %d hand-offs for %d txs: batching never engaged",
			batched.DispatchRuns, batched.DispatchedTxs)
	}

	// Multi-threaded runs may schedule differently but must commit the same
	// state either way.
	rootSingle4, _ := execWithBatch(t, 4, 1)
	rootBatched4, _ := execWithBatch(t, 4, defaultMaxBatch)
	if rootSingle4 != rootBatched4 || rootSingle4 != rootSingle {
		t.Fatalf("4-thread roots diverge: single %s, batched %s, 1-thread %s",
			rootSingle4, rootBatched4, rootSingle)
	}
}

// TestPoolRunLengthPolicy pins the adaptive run-length rule: an even split
// of the ready set across threads, capped at maxBatch, collapsing to
// single-transaction dispatch while parked readers wait for slots.
func TestPoolRunLengthPolicy(t *testing.T) {
	p := &pool{threads: 4, maxBatch: defaultMaxBatch}
	for i := 0; i < 100; i++ {
		p.ready.push(i)
	}
	if got := p.runLenLocked(); got != 25 {
		t.Errorf("100 ready / 4 threads: run length %d, want 25", got)
	}
	p.resume = resumerHeap{{idx: 3}}
	if got := p.runLenLocked(); got != 1 {
		t.Errorf("with parked resumers: run length %d, want 1", got)
	}
	p.resume = nil
	for i := 100; i < 1000; i++ {
		p.ready.push(i)
	}
	if got := p.runLenLocked(); got != defaultMaxBatch {
		t.Errorf("1000 ready / 4 threads: run length %d, want cap %d", got, defaultMaxBatch)
	}
}

// TestPoolBatchSpawnAccounting: a block enqueued in one shot on T threads
// must not create a goroutine per transaction (run-granular spawning keeps
// the worker count at T when nothing parks), the dispatch telemetry must
// cover every transaction exactly once, and batching must actually engage
// (each dispatch takes an even share of the remaining ready set, so the
// run count stays far below the transaction count).
func TestPoolBatchSpawnAccounting(t *testing.T) {
	var wg sync.WaitGroup
	p := newPool(4, func(int, int) { wg.Done() })
	wg.Add(256)
	p.enqueueAll(256)
	wg.Wait()
	p.shutdown()

	runs, runTxs := p.runStats()
	if runTxs != 256 {
		t.Errorf("dispatch telemetry covered %d txs, want 256", runTxs)
	}
	// The first wave alone is 4 runs; worker-timing decides how the tail
	// splits, but the mean run length must stay well above single-tx
	// dispatch (256 runs) for batching to mean anything.
	if runs < 4 || runs > 64 {
		t.Errorf("256 txs on 4 threads dispatched %d runs, want 4..64", runs)
	}
	if sp := p.workersSpawned(); sp > 4 {
		t.Errorf("spawned %d workers for a no-park block on 4 threads, want <= 4", sp)
	}
}

// TestAccessorResetLeaksNothing is the poisoned-arena test: dirty every
// field of an accessor — including retained backing arrays — and verify
// reset leaves no value, code reference, or flag observable by the next
// incarnation that reuses the pooled object.
func TestAccessorResetLeaksNothing(t *testing.T) {
	r := &run{}
	a := r.getAccessor()

	var addr types.Address
	addr[0] = 0xaa
	id := sag.StorageItem(addr, types.Hash{1})
	a.items = append(a.items, itemRec{
		id: id, touch: touchWritten,
		hasW: true, hasPending: true, hasCached: true, hasPublished: true,
		publishedDel: true, hasCode: true, writeEvts: 3,
		w: u256.NewUint64(77), pending: u256.NewUint64(5),
		cached: u256.NewUint64(9), published: u256.NewUint64(13),
		code: []byte{0xde, 0xad},
	})
	a.spill = map[sag.ItemID]int32{id: 0}
	a.journal = append(a.journal, undo{had: true, item: 0, val: u256.NewUint64(7), code: []byte{1}})
	a.snaps = append(a.snaps, 1)
	a.events = append(a.events, TraceEvent{Item: id, Offset: 42})
	a.armDelta, a.armStore = true, true
	a.deltaPending, a.deltaPendingOK = id, true
	a.drained = true
	a.infoAddr[0] = 1
	a.infoOK = true
	a.topGas, a.offset, a.intrins = 10, 20, 30
	a.worker, a.inFinish = 5, true
	a.panicAfter, a.forceStale, a.suppressEarly = 2, true, true

	itemCap, journalCap := cap(a.items), cap(a.journal)
	a.reset()

	if len(a.items) != 0 || len(a.journal) != 0 || len(a.snaps) != 0 || len(a.events) != 0 {
		t.Fatalf("reset left live entries: items=%d journal=%d snaps=%d events=%d",
			len(a.items), len(a.journal), len(a.snaps), len(a.events))
	}
	if a.spill != nil {
		t.Error("reset kept the spill index")
	}
	// The backing arrays are retained for capacity — their contents must be
	// zeroed so a reused record can never resurrect a previous incarnation's
	// value or pin its code bytes in memory.
	for _, rec := range a.items[:itemCap] {
		dirty := rec.id != (sag.ItemID{}) || rec.touch != touchNone ||
			rec.hasW || rec.hasPending || rec.hasCached || rec.hasPublished ||
			rec.publishedDel || rec.hasCode || rec.writeEvts != 0 ||
			!rec.w.IsZero() || !rec.pending.IsZero() || !rec.cached.IsZero() ||
			!rec.published.IsZero() || rec.code != nil
		if dirty {
			t.Fatalf("retained item record not zeroed: %+v", rec)
		}
	}
	for i, u := range a.journal[:journalCap] {
		if u.had || u.code != nil || !u.val.IsZero() {
			t.Fatalf("retained journal record %d not zeroed: %+v", i, u)
		}
	}
	if a.armDelta || a.armStore || a.deltaPendingOK || a.drained || a.infoOK ||
		a.inFinish || a.forceStale || a.suppressEarly {
		t.Error("reset left a flag set")
	}
	if a.deltaPending != (sag.ItemID{}) || a.infoAddr != (types.Address{}) {
		t.Error("reset left identity fields set")
	}
	if a.topGas != 0 || a.offset != 0 || a.intrins != 0 || a.worker != 0 || a.panicAfter != 0 {
		t.Error("reset left counters set")
	}
	r.putAccessor(a)
}
