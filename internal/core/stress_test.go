package core

import (
	"math/rand"
	"runtime/debug"
	"sync"
	"testing"

	"dmvcc/internal/evm"
	"dmvcc/internal/sag"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// TestSequenceWaiterStress hammers one sequence with concurrent delta
// publishers, droppers and parked readers (run under -race in CI). Readers
// use the full park/resume waiter protocol; because every entry below a
// reader must be resolved before its scan completes, each reader's final
// value is exactly the sum of the published deltas beneath it.
func TestSequenceWaiterStress(t *testing.T) {
	const writers = 96
	const readers = 8
	s := newSequence(testItem())
	for i := 0; i < writers; i++ {
		s.addPredicted(i, kindDelta)
	}

	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, writers)
	dropped := make([]bool, writers)
	for i := range vals {
		vals[i] = uint64(1 + rng.Intn(1000))
		dropped[i] = rng.Intn(4) == 0
	}
	perm := rng.Perm(writers)

	var wg sync.WaitGroup
	results := make([]u256.Int, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			readerTx := writers + r // positioned after every writer
			var w *seqWaiter
			for {
				val, res, _, next := s.tryRead(readerTx, 0, u256.Zero, never, w)
				if res != readBlocked {
					results[r] = val
					return
				}
				w = next
				<-w.ch
			}
		}(r)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := g; k < writers; k += 4 {
				i := perm[k]
				if dropped[i] {
					s.dropVersion(i, 0)
				} else {
					s.versionWrite(i, 0, u256.NewUint64(vals[i]), true)
				}
			}
		}(g)
	}
	wg.Wait()

	var want u256.Int
	for i := range vals {
		if !dropped[i] {
			d := u256.NewUint64(vals[i])
			want.Add(&want, &d)
		}
	}
	for r := range results {
		if !results[r].Eq(&want) {
			t.Errorf("reader %d saw %s, want %s", r, results[r].Hex(), want.Hex())
		}
	}
}

// TestAbortWastedGasFinishedIncarnation pins the WastedGas accounting of
// the abort path: a finished incarnation caught by a cascade contributes
// its full execution cost, an unfinished one contributes nothing here (its
// own goroutine accounts the partial gas when it observes the abort).
func TestAbortWastedGasFinishedIncarnation(t *testing.T) {
	r := &run{}
	for i := range r.shards {
		r.shards[i].m = make(map[sag.ItemID]*sequence)
	}
	r.sched = newPool(1, func(int, int) { r.wg.Done() })
	defer r.sched.shutdown()

	item := testItem()
	tx0 := &types.Transaction{Gas: 100_000}
	tx1 := &types.Transaction{Gas: 100_000}
	// tx0 published item but never finished; tx1 read the version and
	// finished with a receipt.
	r.rts = []*txRuntime{
		{idx: 0, tx: tx0, abortCh: make(chan struct{}), started: true, published: []sag.ItemID{item}},
		{idx: 1, tx: tx1, abortCh: make(chan struct{}), started: true, readMarks: []sag.ItemID{item},
			finished: true, receipt: &types.Receipt{GasUsed: 60_000}},
	}
	s := r.seq(item)
	s.versionWrite(0, 0, u256.NewUint64(1), false)
	if _, res, _, _ := s.tryRead(1, 0, u256.Zero, never, nil); res == readBlocked {
		t.Fatal("setup read blocked")
	}

	r.abort(victim{tx: 0, inc: 0}, -1)
	r.wg.Wait()

	if got := r.stats.aborts.Load(); got != 2 {
		t.Fatalf("aborts = %d, want tx0 and the cascaded tx1", got)
	}
	want := ExecCost(60_000, evm.IntrinsicGas(tx1.Data))
	if got := r.wasted.Load(); got != want {
		t.Errorf("wasted = %d, want tx1's full cost %d (tx0 was mid-flight)", got, want)
	}
	if got := r.stats.requeues.Load(); got != 2 {
		t.Errorf("requeues = %d, want 2", got)
	}
}

// TestAbortCascadeIterativeDepth builds a synthetic dependency chain of
// 50k transactions — each published one item that the next one read — and
// aborts the head. The cascade must traverse the whole chain without stack
// growth: the stack cap is lowered so a recursive implementation dies
// loudly while the iterative worklist runs in constant stack.
func TestAbortCascadeIterativeDepth(t *testing.T) {
	const n = 50_000
	prev := debug.SetMaxStack(4 << 20)
	defer debug.SetMaxStack(prev)

	r := &run{}
	for i := range r.shards {
		r.shards[i].m = make(map[sag.ItemID]*sequence)
	}
	r.sched = newPool(1, func(int, int) { r.wg.Done() })

	addr := types.HexToAddress("0xabcd")
	item := func(i int) sag.ItemID {
		return sag.StorageItem(addr, types.HashFromWord(u256.NewUint64(uint64(i))))
	}
	r.rts = make([]*txRuntime, n+1)
	for i := 0; i <= n; i++ {
		rt := &txRuntime{idx: i, abortCh: make(chan struct{}), started: true}
		if i < n {
			rt.published = []sag.ItemID{item(i)}
		}
		if i > 0 {
			rt.readMarks = []sag.ItemID{item(i - 1)}
		}
		r.rts[i] = rt
	}
	for i := 0; i < n; i++ {
		s := r.seq(item(i))
		s.versionWrite(i, 0, u256.NewUint64(uint64(i)), false)
		// Transaction i+1 completed a read of transaction i's version.
		if _, res, _, _ := s.tryRead(i+1, 0, u256.Zero, never, nil); res == readBlocked {
			t.Fatal("setup read blocked")
		}
	}

	r.abort(victim{tx: 0, inc: 0}, -1)
	r.wg.Wait() // every relaunched incarnation ran through the pool
	r.sched.shutdown()

	if got := r.stats.aborts.Load(); got != n+1 {
		t.Errorf("aborts = %d, want %d (whole chain)", got, n+1)
	}
	for i, rt := range r.rts {
		if rt.curInc() != 1 {
			t.Fatalf("tx %d incarnation = %d, want 1", i, rt.curInc())
		}
	}
}
