package core

import (
	"dmvcc/internal/sag"
	"dmvcc/internal/telemetry"
	"dmvcc/internal/types"
)

// auditPredictions converts a block's C-SAGs into the auditor's neutral
// prediction records (one per transaction; unanalyzed slots stay empty with
// Analyzed=false).
func auditPredictions(n int, csags []*sag.CSAG) []telemetry.TxPrediction {
	preds := make([]telemetry.TxPrediction, n)
	for i := range preds {
		preds[i].Tx = i
		if i >= len(csags) || csags[i] == nil {
			continue
		}
		c := csags[i]
		preds[i].Analyzed = true
		preds[i].Reads = c.ReadSet()
		preds[i].Writes = c.WriteSet()
		preds[i].Deltas = c.DeltaSet()
		preds[i].GasUsed = c.PredictedGasUsed
		preds[i].Status = c.PredictedStatus.String()
	}
	return preds
}

// auditAccessLogs derives each transaction's actual access sets from the
// committed incarnation's dependency trace (deduplicating repeat events per
// item) and its final receipt.
func auditAccessLogs(traces []*TxTrace, receipts []*types.Receipt) []telemetry.TxAccessLog {
	logs := make([]telemetry.TxAccessLog, len(traces))
	for i, t := range traces {
		logs[i].Tx = i
		if i < len(receipts) && receipts[i] != nil {
			logs[i].GasUsed = receipts[i].GasUsed
			logs[i].Status = receipts[i].Status.String()
		}
		if t == nil {
			continue
		}
		var reads, writes, deltas map[sag.ItemID]struct{}
		add := func(m *map[sag.ItemID]struct{}, id sag.ItemID) {
			if *m == nil {
				*m = make(map[sag.ItemID]struct{})
			}
			(*m)[id] = struct{}{}
		}
		for _, ev := range t.Events {
			switch ev.Kind {
			case TraceRead:
				add(&reads, ev.Item)
			case TraceWrite:
				add(&writes, ev.Item)
			case TraceDelta:
				add(&deltas, ev.Item)
			}
		}
		logs[i].Reads = sortedItems(reads)
		logs[i].Writes = sortedItems(writes)
		logs[i].Deltas = sortedItems(deltas)
	}
	return logs
}

// sortedItems flattens an item set deterministically.
func sortedItems(m map[sag.ItemID]struct{}) []sag.ItemID {
	if len(m) == 0 {
		return nil
	}
	out := make([]sag.ItemID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sag.SortItems(out)
	return out
}
