package core

import (
	"sync"
	"sync/atomic"
	"time"

	"dmvcc/internal/sag"
	"dmvcc/internal/telemetry"
	"dmvcc/internal/u256"
)

// SchedOp classifies one entry of the flight recorder's schedule log: the
// scheduler actions whose relative order decides what every transaction
// observes. The recorder stamps them from inside the same critical sections
// that perform them (s.mu for sequence mutations, rt.mu for incarnation
// transitions), so the log is a happens-before-consistent linearization of
// the block's schedule — the input the deterministic replayer forces back.
type SchedOp uint8

const (
	// OpDispatch marks an incarnation picked up by a pool worker (stamped in
	// the started=true section under rt.mu).
	OpDispatch SchedOp = iota + 1
	// OpRead is a resolved sequence read: Src is the writer transaction whose
	// version was observed (-1 = committed snapshot), Val the value read.
	OpRead
	// OpPublish is an absolute versionWrite; Val is the published value.
	OpPublish
	// OpDelta is a commutative delta publish; Val is the contribution.
	OpDelta
	// OpDrop invalidates a version (abort cleanup or an unperformed
	// predicted write at finish).
	OpDrop
	// OpAbort retires a victim incarnation (stamped inside the rt.mu
	// retirement section; Src is the causing transaction, Item the stale
	// item for diagnostics).
	OpAbort
	// OpCommit records an incarnation's receipt as final.
	OpCommit
	// OpWatchdog marks a stall-recovery round (diagnostic only; captures
	// containing one are refused for replay).
	OpWatchdog
	// OpBreaker marks a circuit-breaker trip (diagnostic only).
	OpBreaker
)

// String renders the op for reports and JSON captures.
func (o SchedOp) String() string {
	switch o {
	case OpDispatch:
		return "dispatch"
	case OpRead:
		return "read"
	case OpPublish:
		return "publish"
	case OpDelta:
		return "delta"
	case OpDrop:
		return "drop"
	case OpAbort:
		return "abort"
	case OpCommit:
		return "commit"
	case OpWatchdog:
		return "watchdog"
	case OpBreaker:
		return "breaker"
	default:
		return "?"
	}
}

// ParseSchedOp inverts String (capture decoding).
func ParseSchedOp(s string) (SchedOp, bool) {
	for o := OpDispatch; o <= OpBreaker; o++ {
		if o.String() == s {
			return o, true
		}
	}
	return 0, false
}

// Gated reports whether events of this kind participate in forced-
// interleaving replay (watchdog/breaker events are diagnostics only).
func (o SchedOp) Gated() bool { return o >= OpDispatch && o <= OpCommit }

// ItemKeyed reports whether the replayer matches events of this kind on the
// item as well as (op, tx, inc). Per-incarnation actions on distinct items
// (reads, publishes, drops) need the item to disambiguate; dispatch, abort
// and commit happen at most once per incarnation.
func (o SchedOp) ItemKeyed() bool {
	switch o {
	case OpRead, OpPublish, OpDelta, OpDrop:
		return true
	}
	return false
}

// SchedEvent is one recorded scheduler action. Seq is the global stamp
// (assigned under the recorder lock from inside the performing critical
// section); Src is op-specific (read source / abort cause).
type SchedEvent struct {
	Seq    uint64
	Op     SchedOp
	Tx     int32
	Inc    int32
	Worker int32
	Src    int32
	Item   sag.ItemID
	Val    u256.Int
}

// recorderSampleEvery is the append-latency sampling period: one timed
// append per this many events keeps the clock reads off the common path.
const recorderSampleEvery = 256

// ScheduleRecorder is the flight recorder: a compact, ordered log of every
// schedule-relevant action of one block execution. It follows the tracer's
// cost discipline — a nil or disabled recorder costs one atomic load per
// potential event (pinned by BenchmarkRecorderDisabled) — and is attached
// via Executor.SetRecorder. Unlike the tracer (fixed-size ring, lossy, wall
// clock), the recorder is lossless and logically stamped: Record is called
// while the mutating lock is held, so the stamp order is a valid
// linearization of the schedule.
type ScheduleRecorder struct {
	enabled atomic.Bool

	mu      sync.Mutex
	events  []SchedEvent
	tick    uint32
	samples []float64 // sampled append latency (ns/event)
	total   uint64    // events recorded since the last FlushMetrics
}

// NewScheduleRecorder returns a recorder in the disabled state.
func NewScheduleRecorder() *ScheduleRecorder { return &ScheduleRecorder{} }

// Enabled reports whether events should be recorded (nil-safe).
func (rc *ScheduleRecorder) Enabled() bool { return rc != nil && rc.enabled.Load() }

// Enable starts recording.
func (rc *ScheduleRecorder) Enable() { rc.enabled.Store(true) }

// Disable stops recording (the log is retained until Reset).
func (rc *ScheduleRecorder) Disable() { rc.enabled.Store(false) }

// Record appends one event, stamping it under the recorder lock. Callers
// invoke it from inside the critical section that performs the action, so
// two causally ordered actions always stamp in order. worker and src are
// -1 when not meaningful for the op.
func (rc *ScheduleRecorder) Record(op SchedOp, tx, inc, worker, src int, item sag.ItemID, val u256.Int) {
	rc.mu.Lock()
	rc.tick++
	sampled := rc.tick%recorderSampleEvery == 1
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	rc.events = append(rc.events, SchedEvent{
		Seq:    uint64(len(rc.events)),
		Op:     op,
		Tx:     int32(tx),
		Inc:    int32(inc),
		Worker: int32(worker),
		Src:    int32(src),
		Item:   item,
		Val:    val,
	})
	rc.total++
	if sampled {
		rc.samples = append(rc.samples, float64(time.Since(t0).Nanoseconds()))
	}
	rc.mu.Unlock()
}

// RecordMark is Record for ops without an item or value.
func (rc *ScheduleRecorder) RecordMark(op SchedOp, tx, inc int) {
	rc.Record(op, tx, inc, -1, -1, sag.ItemID{}, u256.Int{})
}

// Reset clears the log for the next block (metrics accumulation survives).
func (rc *ScheduleRecorder) Reset() {
	rc.mu.Lock()
	rc.events = rc.events[:0]
	rc.mu.Unlock()
}

// Len returns the number of recorded events.
func (rc *ScheduleRecorder) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.events)
}

// Snapshot copies the log in stamp order.
func (rc *ScheduleRecorder) Snapshot() []SchedEvent {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]SchedEvent, len(rc.events))
	copy(out, rc.events)
	return out
}

// FlushMetrics folds the recorder's counters into the registry:
// replay.events_recorded (events since the last flush) and
// replay.record_ns_per_event (sampled append latency histogram).
func (rc *ScheduleRecorder) FlushMetrics(reg *telemetry.Registry) {
	if rc == nil || reg == nil {
		return
	}
	rc.mu.Lock()
	total := rc.total
	rc.total = 0
	samples := rc.samples
	rc.samples = nil
	rc.mu.Unlock()
	if total > 0 {
		reg.Counter("replay.events_recorded").Add(int64(total))
	}
	h := reg.Histogram("replay.record_ns_per_event")
	for _, ns := range samples {
		h.Observe(ns)
	}
}

// Gate forces a recorded interleaving back onto a live execution. Every
// gated scheduler action calls Await before performing and Done after: the
// replayer's sequencer admits exactly the action matching the next recorded
// event, one at a time, so the replayed block observes the same resolved
// reads, publish order and abort cascade as the capture.
//
// Await returns false when the acting incarnation died while waiting (dead
// reports it); the caller must skip the action as it would for any stale
// incarnation. dead may be nil for actions that must always perform (abort
// cleanup drops).
type Gate interface {
	Await(op SchedOp, tx, inc int, item sag.ItemID, dead func() bool) bool
	Done()
}
