package core_test

import (
	"testing"

	"dmvcc/internal/core"
	"dmvcc/internal/sag"
	"dmvcc/internal/telemetry"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// TestRecorderStamping proves events are stamped densely in append order and
// survive a snapshot intact.
func TestRecorderStamping(t *testing.T) {
	rc := core.NewScheduleRecorder()
	rc.Enable()
	id := sag.BalanceItem(types.BytesToAddress([]byte{1}))
	rc.RecordMark(core.OpDispatch, 0, 0)
	rc.Record(core.OpRead, 0, 0, 3, -1, id, u256.NewUint64(42))
	rc.RecordMark(core.OpCommit, 0, 0)
	events := rc.Snapshot()
	if len(events) != 3 || rc.Len() != 3 {
		t.Fatalf("recorded %d events (Len %d), want 3", len(events), rc.Len())
	}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d stamped Seq %d, want dense order", i, e.Seq)
		}
	}
	want := u256.NewUint64(42)
	if events[1].Op != core.OpRead || events[1].Worker != 3 || events[1].Item != id ||
		!events[1].Val.Eq(&want) {
		t.Fatalf("read event recorded as %+v", events[1])
	}
	if events[0].Worker != -1 || events[0].Src != -1 {
		t.Fatalf("RecordMark must stamp worker/src -1, got %+v", events[0])
	}

	rc.Reset()
	if rc.Len() != 0 {
		t.Fatalf("Reset left %d events", rc.Len())
	}
	rc.RecordMark(core.OpDispatch, 1, 0)
	if got := rc.Snapshot(); len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("stamps must restart at 0 after Reset, got %+v", got)
	}
}

// TestRecorderFlushMetrics proves the recorder's counters land in the
// registry and reset on flush.
func TestRecorderFlushMetrics(t *testing.T) {
	rc := core.NewScheduleRecorder()
	rc.Enable()
	reg := telemetry.NewRegistry()
	for i := 0; i < 10; i++ {
		rc.RecordMark(core.OpDispatch, i, 0)
	}
	rc.FlushMetrics(reg)
	if got := reg.Counter("replay.events_recorded").Value(); got != 10 {
		t.Fatalf("events_recorded = %d, want 10", got)
	}
	rc.FlushMetrics(reg)
	if got := reg.Counter("replay.events_recorded").Value(); got != 10 {
		t.Fatalf("flush must reset the pending count, counter now %d", got)
	}
	// Nil-safety: both sides optional.
	rc.FlushMetrics(nil)
	(*core.ScheduleRecorder)(nil).FlushMetrics(reg)
}

// TestParseSchedOp proves every op name round-trips (capture decoding).
func TestParseSchedOp(t *testing.T) {
	for op := core.OpDispatch; op <= core.OpBreaker; op++ {
		got, ok := core.ParseSchedOp(op.String())
		if !ok || got != op {
			t.Fatalf("ParseSchedOp(%q) = %v,%v", op.String(), got, ok)
		}
	}
	if _, ok := core.ParseSchedOp("nonsense"); ok {
		t.Fatal("ParseSchedOp accepted garbage")
	}
}

// TestRecorderCapturesExecution proves an enabled recorder attached to a
// real block execution captures a well-formed schedule: every committed
// transaction has exactly one dispatch and one commit per winning
// incarnation, and the log is HB-consistent (a commit never precedes its own
// dispatch).
func TestRecorderCapturesExecution(t *testing.T) {
	txs := benchTxs()
	db, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExecutor(reg, 4)
	rc := core.NewScheduleRecorder()
	rc.Enable()
	ex.SetRecorder(rc)
	if _, err := ex.ExecuteBlock(db, blk, txs, csags); err != nil {
		t.Fatal(err)
	}
	events := rc.Snapshot()
	if len(events) == 0 {
		t.Fatal("enabled recorder captured nothing")
	}
	dispatched := map[[2]int32]bool{}
	commits := map[int32]int{}
	for _, e := range events {
		switch e.Op {
		case core.OpDispatch:
			dispatched[[2]int32{e.Tx, e.Inc}] = true
		case core.OpCommit:
			if !dispatched[[2]int32{e.Tx, e.Inc}] {
				t.Fatalf("tx %d inc %d committed before its dispatch was recorded", e.Tx, e.Inc)
			}
			commits[e.Tx]++
		}
	}
	for i := range txs {
		if commits[int32(i)] != 1 {
			t.Fatalf("tx %d has %d recorded commits, want exactly 1", i, commits[int32(i)])
		}
	}
}
