package core_test

// Reconstruction of the paper's running example (Fig. 4 and Fig. 6): six
// transactions over three state items where write versioning lets two
// writers of I1 run concurrently, commutative writes let T2 and T4 update
// I2 in parallel, and early visibility lets T3 start as soon as T1's write
// to I1 is released. We express the example as contract calls, execute it
// under DMVCC, and check both the semantics (serial-equivalent root) and
// the schedule quality (virtual makespan on three threads beats
// transaction-level scheduling, as Fig. 6 shows vs Fig. 4(b)).

import (
	"testing"

	"dmvcc/internal/baseline"
	"dmvcc/internal/core"
	"dmvcc/internal/minisol"
	"dmvcc/internal/sag"
	"dmvcc/internal/schedsim"
	"dmvcc/internal/state"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

const figSrc = `
contract Items {
    mapping(uint => uint) I;

    // write: I[k] = v (an absolute write, creates a version)
    function write(uint k, uint v) public {
        uint spin = 0;
        for (uint j = 0; j < 25; j++) {
            spin = spin + j;
        }
        I[k] = v;
    }

    // bump: commutative blind increment of I[k]
    function bump(uint k, uint v) public {
        uint spin = 0;
        for (uint j = 0; j < 25; j++) {
            spin = spin + j;
        }
        I[k] += v;
    }

    // mix: read I[a], write its value into I[b]
    function mix(uint a, uint b) public {
        uint spin = 0;
        for (uint j = 0; j < 25; j++) {
            spin = spin + j;
        }
        I[b] = I[a] + 1;
    }
}
`

func TestPaperFig4Example(t *testing.T) {
	itemsAddr := types.HexToAddress("0xc000000000000000000000000000000000000009")
	buildDB := func() (*state.DB, *sag.Registry) {
		db := state.NewDB()
		reg := sag.NewRegistry()
		compiled := minisol.MustCompile(figSrc)
		o := state.NewOverlay(db)
		o.SetCode(itemsAddr, compiled.Code)
		reg.RegisterCompiled(itemsAddr, compiled)
		for i := 0; i < 8; i++ {
			o.SetBalance(user(i), u256.NewUint64(1_000_000_000))
		}
		if _, err := db.Commit(o.Changes()); err != nil {
			t.Fatal(err)
		}
		return db, reg
	}
	itemCall := func(i int, method string, args ...uint64) *types.Transaction {
		words := make([]u256.Int, len(args))
		for j, a := range args {
			words[j] = u256.NewUint64(a)
		}
		return &types.Transaction{
			From: user(i),
			To:   itemsAddr,
			Gas:  2_000_000,
			Data: minisol.CallData(method, words...),
		}
	}

	// The block, following Fig. 4(a)'s access sequences:
	//   T1: ω(I1)            T2: ω̄(I2)        T3: ρ(I1) ω(I3)
	//   T4: ω̄(I2)            T5: ω(I1)        T6: ρ(I2) ω(I3)
	// (T5 writes I1 again — write versioning means no conflict with T1.)
	txs := []*types.Transaction{
		itemCall(1, "write", 1, 100), // T1: ω(I1)
		itemCall(2, "bump", 2, 10),   // T2: ω̄(I2)
		itemCall(3, "mix", 1, 3),     // T3: ρ(I1), ω(I3)
		itemCall(4, "bump", 2, 20),   // T4: ω̄(I2)
		itemCall(5, "write", 1, 200), // T5: ω(I1)
		itemCall(6, "mix", 2, 3),     // T6: ρ(I2), ω(I3)
	}

	// Semantics: identical to serial.
	dbS, _ := buildDB()
	serial, err := baseline.ExecuteSerial(dbS, blk, txs)
	if err != nil {
		t.Fatal(err)
	}
	wantRoot, err := dbS.Commit(serial.WriteSet)
	if err != nil {
		t.Fatal(err)
	}

	db, reg := buildDB()
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	// The analyzer must classify the bumps as deltas (Definition 3's
	// non-conflicting ω̄) and the two writers of I1 as non-conflicting.
	if len(csags[1].Deltas) == 0 || len(csags[3].Deltas) == 0 {
		t.Fatalf("bumps not classified as deltas: %s / %s", csags[1], csags[3])
	}
	if csags[0].ConflictsWith(csags[4]) {
		t.Error("two writers of I1 must not conflict (write versioning)")
	}
	if csags[1].ConflictsWith(csags[3]) {
		t.Error("two commutative bumps of I2 must not conflict")
	}
	if !csags[0].ConflictsWith(csags[2]) {
		t.Error("T1 (ω I1) and T3 (ρ I1) must conflict")
	}

	res, err := core.NewExecutor(reg, 3).ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	root, err := db.Commit(res.WriteSet)
	if err != nil {
		t.Fatal(err)
	}
	if root != wantRoot {
		t.Fatalf("Fig. 4 example diverged from serial")
	}
	if res.Stats.DeltaPublishes < 2 {
		t.Errorf("expected >= 2 delta publishes, got %d", res.Stats.DeltaPublishes)
	}

	// Schedule quality, as in Fig. 6 vs Fig. 4(b): on three threads the
	// fine-grained schedule must beat transaction-level DAG scheduling of
	// the same block (which serializes T2-T4 via the ω̄ pair it treats as a
	// write-write conflict, and delays T3 until T1 fully commits).
	var serialSpan uint64
	for _, tr := range res.Traces {
		serialSpan += tr.Gas
	}
	dmvccSpan := schedsim.DMVCC(res.Traces, 3, res.WastedGas)

	dbD, _ := buildDB()
	sets, err := baseline.OracleSets(dbD, blk, txs)
	if err != nil {
		t.Fatal(err)
	}
	dagOut, err := baseline.ExecuteDAG(dbD, blk, txs, baseline.Coarsen(sets), 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = dagOut
	costs := make([]uint64, len(txs))
	for i, r := range serial.Receipts {
		intrinsic := uint64(21000 + 16*len(txs[i].Data))
		costs[i] = core.ExecCost(r.GasUsed, intrinsic)
	}
	dagSpan := schedsim.DAG(costs, baseline.BuildDeps(baseline.Coarsen(sets)), 3)

	if dmvccSpan >= dagSpan {
		t.Errorf("fine-grained schedule (%d) should beat transaction-level DAG (%d) on the Fig. 4 block",
			dmvccSpan, dagSpan)
	}
	t.Logf("Fig. 4 block on 3 threads: serial=%d dag=%d dmvcc=%d (gas-time units)",
		serialSpan, dagSpan, dmvccSpan)
}
