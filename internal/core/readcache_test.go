package core_test

import (
	"testing"

	"dmvcc/internal/core"
	"dmvcc/internal/fault"
)

// TestReadCacheAbortReexecution: with a single worker, the per-worker
// committed-snapshot read cache is warm from the first incarnation when an
// aborted transaction re-executes on the same goroutine. Injected stale-read
// aborts force exactly that situation across a contended block; the
// committed root must still match the serial baseline — a cache serving a
// pre-abort value to the re-execution would diverge (the chaos harness
// compares roots).
func TestReadCacheAbortReexecution(t *testing.T) {
	txs := chaosTxs(96)
	cfg := fault.Config{Seed: 11, Rates: map[fault.Point]float64{fault.SnapshotStale: 0.25}}
	stats := chaosRun(t, txs, 1, cfg, core.Hardening{})
	if stats.Aborts == 0 {
		t.Fatal("no injected aborts fired: the re-execution path was never exercised")
	}
	if stats.Executions <= int64(len(txs)) {
		t.Fatalf("executions %d <= block size %d despite %d aborts", stats.Executions, len(txs), stats.Aborts)
	}

	// Same faults on several workers: re-executions may land on a different
	// worker whose cache holds its own first-incarnation reads.
	stats = chaosRun(t, txs, 4, cfg, core.Hardening{})
	if stats.Aborts == 0 {
		t.Fatal("no injected aborts fired at 4 threads")
	}
}
