package core

import (
	"bytes"

	"dmvcc/internal/evm"
	"dmvcc/internal/fault"
	"dmvcc/internal/sag"
	"dmvcc/internal/telemetry"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// itemRec is the per-item access record of one incarnation: the buffered
// absolute write, accumulated unpublished delta, memoized resolved read,
// early-publish bookkeeping, and the analyzer-mirroring touch state — all in
// one cache line run instead of eight parallel maps. A zero-valued record is
// equivalent to the item being absent (every consumer gates on the has*
// flags or touchNone), which is what makes journal reverts cheap: reverting
// an item's creation just zeroes its fields in place.
type itemRec struct {
	id    sag.ItemID
	touch touchKind

	hasW         bool
	hasPending   bool
	hasCached    bool
	hasPublished bool
	publishedDel bool
	hasCode      bool

	writeEvts int32

	w         u256.Int // buffered absolute write
	pending   u256.Int // accumulated unpublished delta
	cached    u256.Int // memoized resolved read
	published u256.Int // early-published absolute value

	code []byte // deployed code bytes (KindCode items)
}

// spillThreshold is the item count past which the accessor builds a map
// index over the vector. Below it, lookups are a linear scan over contiguous
// records — cheaper than hashing a 53-byte ItemID for the typical
// transaction touching well under a dozen items.
const spillThreshold = 24

// accessor is the evm.State implementation backing one transaction
// incarnation under DMVCC. Reads resolve through the access sequences
// (blocking on pending predecessor versions); writes buffer locally and
// become visible through versionWrite — either early, at a release point,
// or at transaction finish. Its delta/degrade protocol mirrors sag.recorder
// exactly so C-SAG predictions line up with runtime behaviour.
//
// Access recording is a small vector of itemRec (index map only past
// spillThreshold), sized from the C-SAG prediction; accessors are pooled
// across incarnations and blocks, retaining vector/journal capacity.
type accessor struct {
	r   *run
	rt  *txRuntime
	inc int

	items []itemRec
	spill map[sag.ItemID]int32 // index over items, built past spillThreshold

	// scratch holds the sorted predicted-write ids during finish's drop
	// sweep (reused across incarnations; finish must visit them in a
	// deterministic order for the replay machinery).
	scratch []sag.ItemID

	journal []undo
	snaps   []int

	armDelta       bool
	armStore       bool
	deltaPending   sag.ItemID
	deltaPendingOK bool
	drained        bool // no unpublished release-eligible writes remain

	// deadFn is a.dead bound once per accessor lifetime (the method value
	// would otherwise allocate a closure on every sequence call).
	deadFn func() bool

	// Registry memo: hook performs one contract-info lookup per instruction
	// without it (an RWMutex + map hit that dominated the hot loop); frames
	// run many consecutive instructions in one contract, so a one-entry
	// cache absorbs nearly all of them.
	infoAddr types.Address
	info     *sag.ContractInfo
	infoOK   bool

	// snapCache is the executing worker's committed-snapshot read cache
	// (see workerCache); it follows the goroutine, not the incarnation.
	snapCache *workerCache

	// Virtual-time trace: topGas is the top frame's starting gas, offset
	// the gas consumed so far (top-frame view), events the dependency log.
	topGas  uint64
	offset  uint64
	events  []TraceEvent
	intrins uint64

	// worker is the pool goroutine executing this incarnation (telemetry
	// track id); inFinish flags finish-time publishes so the tracer can
	// distinguish them from early-write visibility.
	worker   int
	inFinish bool

	// Fault-injection arming, decided once per incarnation (all zero when
	// no injector is attached — the production path).
	panicAfter    int  // instruction countdown to an injected panic
	forceStale    bool // force-abort the next sequence read
	suppressEarly bool // suppress release-point early publication
}

// touchKind mirrors the analyzer's classification states.
type touchKind uint8

const (
	touchNone touchKind = iota
	touchRead
	touchDelta
	touchWritten
)

var (
	_ evm.State        = (*accessor)(nil)
	_ evm.BalanceAdder = (*accessor)(nil)
)

// newAccessor builds the state view of one incarnation on a pooled
// accessor: the item vector, journal, and trace buffers retain their
// capacity across incarnations, so a steady-state incarnation allocates
// nothing here.
func newAccessor(r *run, rt *txRuntime, inc int) *accessor {
	a := r.getAccessor()
	a.r = r
	a.rt = rt
	a.inc = inc
	a.intrins = evm.IntrinsicGas(rt.tx.Data)
	if c := rt.csag; c != nil {
		want := len(c.Reads) + len(c.Writes) + len(c.Deltas)
		if cap(a.items) < want {
			a.items = make([]itemRec, 0, want+4)
		}
		if cap(a.events) < want {
			a.events = make([]TraceEvent, 0, want+4)
		}
	}
	if a.deadFn == nil {
		a.deadFn = a.dead
	}
	if in := r.faults; in.Enabled() {
		a.armFaults(in)
	}
	return a
}

// reset clears the accessor for reuse, keeping allocated capacity. The
// events slice is NOT retained when the incarnation completed — its backing
// array escapes into the committed TxTrace — but aborted incarnations hand
// theirs back.
func (a *accessor) reset() {
	a.r = nil
	a.rt = nil
	a.inc = 0
	clear(a.items) // drop code-slice references before pooling
	a.items = a.items[:0]
	a.spill = nil
	a.scratch = a.scratch[:0]
	clear(a.journal)
	a.journal = a.journal[:0]
	a.snaps = a.snaps[:0]
	a.armDelta = false
	a.armStore = false
	a.deltaPending = sag.ItemID{}
	a.deltaPendingOK = false
	a.drained = false
	a.infoAddr = types.Address{}
	a.info = nil
	a.infoOK = false
	a.snapCache = nil
	a.topGas = 0
	a.offset = 0
	a.events = a.events[:0]
	a.intrins = 0
	a.worker = 0
	a.inFinish = false
	a.panicAfter = 0
	a.forceStale = false
	a.suppressEarly = false
}

// armFaults draws this incarnation's fault decisions up front (one hash per
// armed point), so the per-instruction hot path only tests plain fields.
func (a *accessor) armFaults(in *fault.Injector) {
	blockN := int64(a.r.block.Number)
	if ok, roll := in.Draw(fault.WorkerPanic, blockN, a.rt.idx, a.inc); ok {
		// Panic mid-transaction: after a deterministic, roll-derived number
		// of instructions (between VM steps, no scheduler locks held).
		a.panicAfter = 1 + int((roll>>33)%24)
	}
	a.forceStale = in.Fire(fault.SnapshotStale, blockN, a.rt.idx, a.inc)
	a.suppressEarly = in.Fire(fault.DelayEarlyPublish, blockN, a.rt.idx, a.inc)
}

// dead reports whether this incarnation has been aborted.
func (a *accessor) dead() bool { return a.rt.curInc() != a.inc }

// lookupInfo resolves the contract info of addr through the one-entry memo.
func (a *accessor) lookupInfo(addr types.Address) *sag.ContractInfo {
	if a.infoOK && a.infoAddr == addr {
		return a.info
	}
	info := a.r.reg.Lookup(addr)
	a.infoAddr = addr
	a.info = info
	a.infoOK = true
	return info
}

// --- item vector ------------------------------------------------------------

// find returns the index of id's record, or -1.
func (a *accessor) find(id sag.ItemID) int {
	if a.spill != nil {
		if i, ok := a.spill[id]; ok {
			return int(i)
		}
		return -1
	}
	for i := range a.items {
		if a.items[i].id == id {
			return i
		}
	}
	return -1
}

// rec returns the index of id's record, appending a zero record if absent.
func (a *accessor) rec(id sag.ItemID) int {
	if i := a.find(id); i >= 0 {
		return i
	}
	i := len(a.items)
	a.items = append(a.items, itemRec{id: id})
	if a.spill != nil {
		a.spill[id] = int32(i)
	} else if len(a.items) > spillThreshold {
		a.spill = make(map[sag.ItemID]int32, 2*len(a.items))
		for j := range a.items {
			a.spill[a.items[j].id] = int32(j)
		}
	}
	return i
}

// --- journaling -------------------------------------------------------------

// undoKind selects which itemRec field an undo record restores.
type undoKind uint8

const (
	undoTouch undoKind = iota + 1
	undoW
	undoWCode
	undoPending
)

// undo is one typed entry of the revert journal, addressing an item record
// by index (records are never removed, so indexes are stable).
type undo struct {
	kind undoKind
	had  bool
	tk   touchKind
	item int32
	val  u256.Int
	code []byte
}

// revert undoes one journal record.
func (a *accessor) revert(u *undo) {
	rec := &a.items[u.item]
	switch u.kind {
	case undoTouch:
		rec.touch = u.tk
	case undoW:
		rec.hasW = u.had
		rec.w = u.val
	case undoWCode:
		rec.hasCode = u.had
		rec.code = u.code
	case undoPending:
		rec.hasPending = u.had
		rec.pending = u.val
	}
}

func (a *accessor) setTouch(i int, t touchKind) {
	rec := &a.items[i]
	a.journal = append(a.journal, undo{kind: undoTouch, item: int32(i), tk: rec.touch})
	rec.touch = t
}

func (a *accessor) setW(i int, v u256.Int) {
	rec := &a.items[i]
	a.journal = append(a.journal, undo{kind: undoW, item: int32(i), had: rec.hasW, val: rec.w})
	rec.hasW = true
	rec.w = v
	a.drained = false
}

func (a *accessor) setWCode(i int, code []byte) {
	rec := &a.items[i]
	a.journal = append(a.journal, undo{kind: undoWCode, item: int32(i), had: rec.hasCode, code: rec.code})
	rec.hasCode = true
	rec.code = code
	a.drained = false
}

func (a *accessor) addPending(i int, v *u256.Int) {
	rec := &a.items[i]
	a.journal = append(a.journal, undo{kind: undoPending, item: int32(i), had: rec.hasPending, val: rec.pending})
	rec.pending.Add(&rec.pending, v)
	rec.hasPending = true
	a.drained = false
}

func (a *accessor) dropPendingJ(i int) {
	rec := &a.items[i]
	if !rec.hasPending {
		return
	}
	a.journal = append(a.journal, undo{kind: undoPending, item: int32(i), had: true, val: rec.pending})
	rec.hasPending = false
	rec.pending = u256.Int{}
}

// Snapshot implements evm.State.
func (a *accessor) Snapshot() int {
	a.snaps = append(a.snaps, len(a.journal))
	return len(a.snaps) - 1
}

// RevertToSnapshot implements evm.State.
func (a *accessor) RevertToSnapshot(rev int) {
	mark := a.snaps[rev]
	for i := len(a.journal) - 1; i >= mark; i-- {
		a.revert(&a.journal[i])
	}
	a.journal = a.journal[:mark]
	a.snaps = a.snaps[:rev]
}

// --- read path --------------------------------------------------------------

// snapValue reads an item's committed snapshot value through the worker's
// block-lifetime cache (committed state is immutable while the block runs,
// so cached values never go stale; see workerCache).
func (a *accessor) snapValue(id sag.ItemID) u256.Int {
	if c := a.snapCache; c != nil {
		return c.value(a.r.snap, id)
	}
	return snapFor(a.r.snap, id)
}

// readItem resolves a cross-transaction read through the access sequence,
// suspending this transaction (and yielding its execution slot) while the
// required version is pending. Re-attempts pass the previous waiter back so
// the scan resumes from the entry it parked on instead of rescanning the
// whole prefix.
func (a *accessor) readItem(id sag.ItemID) (u256.Int, error) {
	if a.forceStale {
		// Injected snapshot staleness: retire this incarnation as if the
		// read had been resolved from a stale snapshot and invalidated. The
		// abort path relaunches it (the fresh incarnation draws its own
		// fault decisions), so the block still converges.
		a.forceStale = false
		a.r.abortClassed(victim{tx: a.rt.idx, inc: a.inc, item: id, readSrc: -1}, a.rt.idx, telemetry.AbortInjected)
		return u256.Int{}, evm.ErrAborted
	}
	seq := a.r.seq(id)
	var w *seqWaiter
	for {
		if a.dead() {
			seq.cancelWaiter(w)
			return u256.Int{}, evm.ErrAborted
		}
		if g := a.r.gate; g != nil {
			// Replay: wait for this read's recorded turn. On a faithful
			// replay the claim guarantees every publish/drop stamped before
			// the read has been performed and none after, so the resolution
			// below cannot block; a blocked gated read means the schedule
			// already diverged, and the claim is released before parking.
			if !g.Await(OpRead, a.rt.idx, a.inc, id, a.deadFn) {
				seq.cancelWaiter(w)
				return u256.Int{}, evm.ErrAborted
			}
		}
		snap := a.snapValue(id)
		val, res, src, next := seq.tryRead(a.rt.idx, a.inc, snap, a.deadFn, w)
		if g := a.r.gate; g != nil {
			g.Done()
		}
		if res == readAborted {
			return u256.Int{}, evm.ErrAborted
		}
		if res != readBlocked {
			a.rt.noteReadMark(a.inc, id)
			a.events = append(a.events, TraceEvent{Kind: TraceRead, Item: id, Offset: a.offset, Src: src, Val: val})
			if fx := a.r.forensics; fx.Enabled() {
				fx.RecordRead(id)
			}
			return val, nil
		}
		w = next
		a.r.stats.addBlocked()
		if fx := a.r.forensics; fx.Enabled() {
			fx.RecordBlockedRead(id)
		}
		if tr := a.r.tracer; tr.Enabled() {
			tr.Emit(telemetry.EvPark, a.rt.idx, a.inc, a.worker, id, w.blockedTx)
		}
		a.r.sched.yield()
		select {
		case <-w.ch:
		case <-a.rt.abortChan(a.inc):
		}
		a.r.sched.reacquire(a.rt.idx)
		if tr := a.r.tracer; tr.Enabled() {
			tr.Emit(telemetry.EvResume, a.rt.idx, a.inc, a.worker, id, w.blockedTx)
		}
	}
}

// readValue is the common read path with memoization and W-buffer hits.
func (a *accessor) readValue(id sag.ItemID) (u256.Int, error) {
	i := a.rec(id)
	rec := &a.items[i]
	if rec.hasW {
		return rec.w, nil
	}
	if rec.touch == touchDelta {
		return a.degradeRead(id, i)
	}
	if rec.hasCached {
		return rec.cached, nil
	}
	val, err := a.readItem(id)
	if err != nil {
		return u256.Int{}, err
	}
	rec = &a.items[i] // readItem never appends, but don't rely on it
	rec.hasCached = true
	rec.cached = val
	if rec.touch == touchNone {
		a.setTouch(i, touchRead)
	}
	return val, nil
}

// degradeRead converts a delta-mode item to a normal read-modify-write: the
// true base is resolved (blocking), the accumulated unpublished delta
// applied, and the item moves into the absolute write buffer. Any part of
// the delta already published early stays in the sequence as ω̄ — the sum
// remains exact.
func (a *accessor) degradeRead(id sag.ItemID, i int) (u256.Int, error) {
	base, err := a.readItem(id)
	if err != nil {
		return u256.Int{}, err
	}
	rec := &a.items[i]
	var val u256.Int
	val.Add(&base, &rec.pending)
	a.dropPendingJ(i)
	a.setTouch(i, touchWritten)
	a.setW(i, val)
	rec = &a.items[i]
	rec.hasCached = true
	rec.cached = base
	return val, nil
}

// --- write path -------------------------------------------------------------

func (a *accessor) writeAbs(id sag.ItemID, v u256.Int) error {
	i := a.rec(id)
	if a.r.opts.DisableWriteVersioning && a.items[i].touch == touchNone {
		// Single-version emulation: the first write to an item stalls until
		// every earlier writer finished (ww conflicts restored). The stall
		// is also recorded as a read-like trace dependency so the virtual
		// scheduling simulator reproduces the serialization.
		if err := a.waitPriorWrites(id); err != nil {
			return err
		}
		a.events = append(a.events, TraceEvent{Kind: TraceRead, Item: id, Offset: a.offset, Src: -1})
	}
	if a.items[i].touch == touchDelta {
		a.dropPendingJ(i)
	}
	a.setTouch(i, touchWritten)
	a.setW(i, v)
	a.items[i].writeEvts++
	return nil
}

// waitPriorWrites parks until lower-indexed writers of id are finished.
func (a *accessor) waitPriorWrites(id sag.ItemID) error {
	seq := a.r.seq(id)
	var w *seqWaiter
	for {
		if a.dead() {
			seq.cancelWaiter(w)
			return evm.ErrAborted
		}
		pending, next := seq.priorWritesPending(a.rt.idx, a.deadFn, w)
		if !pending {
			return nil
		}
		if next == nil {
			return evm.ErrAborted // incarnation retired while registering
		}
		w = next
		a.r.stats.addBlocked()
		if fx := a.r.forensics; fx.Enabled() {
			fx.RecordBlockedRead(id)
		}
		if tr := a.r.tracer; tr.Enabled() {
			tr.Emit(telemetry.EvPark, a.rt.idx, a.inc, a.worker, id, w.blockedTx)
		}
		a.r.sched.yield()
		select {
		case <-w.ch:
		case <-a.rt.abortChan(a.inc):
		}
		a.r.sched.reacquire(a.rt.idx)
		if tr := a.r.tracer; tr.Enabled() {
			tr.Emit(telemetry.EvResume, a.rt.idx, a.inc, a.worker, id, w.blockedTx)
		}
	}
}

// --- evm.State --------------------------------------------------------------

// GetState implements evm.State.
func (a *accessor) GetState(addr types.Address, key types.Hash) (u256.Int, error) {
	id := sag.StorageItem(addr, key)
	if a.armDelta {
		a.armDelta = false
		i := a.rec(id)
		if t := a.items[i].touch; t == touchNone || t == touchDelta {
			if t == touchNone {
				a.setTouch(i, touchDelta)
			}
			a.deltaPending = id
			a.deltaPendingOK = true
			return u256.Int{}, nil
		}
	}
	return a.readValue(id)
}

// SetState implements evm.State.
func (a *accessor) SetState(addr types.Address, key types.Hash, v u256.Int) error {
	id := sag.StorageItem(addr, key)
	if a.armStore {
		a.armStore = false
		if a.deltaPendingOK && a.deltaPending == id {
			a.deltaPendingOK = false
			i := a.rec(id)
			a.addPending(i, &v)
			a.items[i].writeEvts++
			return nil
		}
	}
	return a.writeAbs(id, v)
}

// GetBalance implements evm.State.
func (a *accessor) GetBalance(addr types.Address) (u256.Int, error) {
	return a.readValue(sag.BalanceItem(addr))
}

// SetBalance implements evm.State.
func (a *accessor) SetBalance(addr types.Address, v u256.Int) error {
	return a.writeAbs(sag.BalanceItem(addr), v)
}

// AddBalance implements evm.BalanceAdder: blind credits stay deltas.
func (a *accessor) AddBalance(addr types.Address, delta u256.Int) error {
	id := sag.BalanceItem(addr)
	i := a.rec(id)
	if t := a.items[i].touch; !a.r.opts.DisableCommutative && (t == touchNone || t == touchDelta) {
		if t == touchNone {
			a.setTouch(i, touchDelta)
		}
		a.addPending(i, &delta)
		a.items[i].writeEvts++
		return nil
	}
	cur, err := a.readValue(id)
	if err != nil {
		return err
	}
	var next u256.Int
	next.Add(&cur, &delta)
	return a.writeAbs(id, next)
}

// GetNonce implements evm.State.
func (a *accessor) GetNonce(addr types.Address) (uint64, error) {
	v, err := a.readValue(sag.NonceItem(addr))
	if err != nil {
		return 0, err
	}
	return v.Uint64(), nil
}

// SetNonce implements evm.State. Protocol nonce bumps are unconditional —
// they survive deterministic reverts and out-of-gas — so the value is final
// the moment it is written and can be published immediately, without
// waiting for a release point. This keeps same-sender transaction chains
// from serializing on the nonce.
func (a *accessor) SetNonce(addr types.Address, v uint64) error {
	id := sag.NonceItem(addr)
	w := u256.NewUint64(v)
	if err := a.writeAbs(id, w); err != nil {
		return err
	}
	if !a.r.opts.DisableEarlyWrite {
		if err := a.publishAbs(id, w); err != nil {
			return err
		}
		a.r.stats.addEarly()
	}
	return nil
}

// GetCode implements evm.State.
func (a *accessor) GetCode(addr types.Address) ([]byte, error) {
	id := sag.CodeItem(addr)
	if i := a.find(id); i >= 0 && a.items[i].hasCode {
		return a.items[i].code, nil
	}
	val, err := a.readValue(id)
	if err != nil {
		return nil, err
	}
	if val.IsZero() {
		// No in-block deployment: committed code.
		if c := a.snapCache; c != nil {
			return c.codeOf(a.r.snap, addr), nil
		}
		return a.r.snap.Code(addr), nil
	}
	return a.r.codeOf(types.HashFromWord(val)), nil
}

// SetCode implements evm.State.
func (a *accessor) SetCode(addr types.Address, code []byte) error {
	id := sag.CodeItem(addr)
	h := a.r.storeCode(code)
	i := a.rec(id)
	a.setTouch(i, touchWritten)
	a.setWCode(i, code)
	a.setW(i, h.Word())
	a.items[i].writeEvts++
	return nil
}

// --- hook: abort checks, commutative arming, release points ----------------

// hook runs before every instruction: it stops dead incarnations, arms the
// commutative sites, and performs Algorithm 2's early-write visibility at
// release points.
func (a *accessor) hook(addr types.Address, depth int, pc uint64, op evm.Opcode, gasLeft uint64) error {
	if a.dead() {
		return evm.ErrAborted
	}
	if a.panicAfter > 0 {
		if a.panicAfter--; a.panicAfter == 0 {
			// Between instructions, no scheduler locks held: the safest spot
			// a genuine opcode-handler panic would surface from.
			panic(&fault.InjectedPanic{Block: int64(a.r.block.Number), Tx: a.rt.idx, Inc: a.inc})
		}
	}
	if depth == 1 {
		if a.topGas == 0 {
			a.topGas = gasLeft
		}
		a.offset = BaseCost + a.topGas - gasLeft
	}
	if !a.r.opts.DisableCommutative {
		switch op {
		case evm.SLOAD:
			if info := a.lookupInfo(addr); info != nil {
				if _, ok := info.CommLoads[pc]; ok {
					a.armDelta = true
				}
			}
		case evm.SSTORE:
			if info := a.lookupInfo(addr); info != nil && info.CommStores[pc] {
				a.armStore = true
			}
		}
	}
	if depth != 1 || a.drained || a.r.opts.DisableEarlyWrite || a.suppressEarly {
		return nil
	}
	info := a.lookupInfo(addr)
	if info == nil || !info.Released(pc, gasLeft) {
		return nil
	}
	a.earlyPublish()
	return nil
}

// earlyPublish makes buffered writes visible before commit (Algorithm 2):
// an item is published once its predicted write events have all happened
// (no write of it remains in the C-SAG's future). Items are visited in
// first-touch order, so publish order is deterministic for a deterministic
// execution (the map-backed predecessor published in random order).
func (a *accessor) earlyPublish() {
	csag := a.rt.csag
	if csag == nil {
		a.drained = true // nothing predicted: publish only at finish
		return
	}
	remaining := false
	for i := 0; i < len(a.items); i++ {
		rec := &a.items[i]
		if rec.hasW {
			if rec.hasPublished && rec.published.Eq(&rec.w) {
				continue
			}
			predicted, ok := csag.Writes[rec.id]
			if !ok || int(rec.writeEvts) < predicted {
				if ok {
					remaining = true
				}
				continue // unpredicted: finish-time only
			}
			if err := a.publishAbs(rec.id, rec.w); err != nil {
				return
			}
			a.r.stats.addEarly()
			continue
		}
		if rec.hasPending && !rec.pending.IsZero() {
			predicted, ok := csag.Deltas[rec.id]
			if !ok || int(rec.writeEvts) < predicted {
				if ok {
					remaining = true
				}
				continue
			}
			if err := a.publishDelta(rec.id, rec.pending); err != nil {
				return
			}
			a.r.stats.addEarly()
		}
	}
	a.drained = !remaining
}

// publishAbs inserts/updates this transaction's absolute version of id.
func (a *accessor) publishAbs(id sag.ItemID, v u256.Int) error {
	if g := a.r.gate; g != nil {
		if !g.Await(OpPublish, a.rt.idx, a.inc, id, a.deadFn) {
			return evm.ErrAborted
		}
	}
	victims, err := a.rt.publish(a.r, a.inc, id, v, false)
	if g := a.r.gate; g != nil {
		g.Done()
	}
	if err != nil {
		return err
	}
	i := a.rec(id)
	a.items[i].hasPublished = true
	a.items[i].published = v
	a.r.noteProgress()
	a.events = append(a.events, TraceEvent{Kind: TraceWrite, Item: id, Offset: a.offset, Src: -1, Val: v})
	if fx := a.r.forensics; fx.Enabled() {
		fx.RecordWrite(id, !a.inFinish)
	}
	if tr := a.r.tracer; tr.Enabled() {
		kind := telemetry.EvEarlyPublish
		if a.inFinish {
			kind = telemetry.EvPublish
		}
		tr.Emit(kind, a.rt.idx, a.inc, a.worker, id, -1)
	}
	for _, vic := range victims {
		a.r.abort(vic, a.rt.idx)
	}
	return nil
}

// publishDelta publishes an accumulated delta contribution and clears the
// local pending amount (later increments accumulate on the same entry).
func (a *accessor) publishDelta(id sag.ItemID, d u256.Int) error {
	if g := a.r.gate; g != nil {
		if !g.Await(OpDelta, a.rt.idx, a.inc, id, a.deadFn) {
			return evm.ErrAborted
		}
	}
	victims, err := a.rt.publish(a.r, a.inc, id, d, true)
	if g := a.r.gate; g != nil {
		g.Done()
	}
	if err != nil {
		return err
	}
	i := a.rec(id)
	a.items[i].hasPending = false
	a.items[i].pending = u256.Int{}
	a.items[i].publishedDel = true
	a.r.noteProgress()
	a.events = append(a.events, TraceEvent{Kind: TraceDelta, Item: id, Offset: a.offset, Src: -1, Val: d})
	a.r.stats.addDelta()
	if fx := a.r.forensics; fx.Enabled() {
		fx.RecordDelta(id)
	}
	if tr := a.r.tracer; tr.Enabled() {
		tr.Emit(telemetry.EvDeltaPublish, a.rt.idx, a.inc, a.worker, id, -1)
	}
	for _, vic := range victims {
		a.r.abort(vic, a.rt.idx)
	}
	return nil
}

// finish publishes every remaining write, drops predicted writes that never
// materialized (so parked readers fall through to earlier versions), and
// records the receipt. It returns false if the incarnation died mid-way.
func (a *accessor) finish(receipt *types.Receipt) bool {
	a.inFinish = true
	a.offset = ExecCost(receipt.GasUsed, a.intrins)
	for i := 0; i < len(a.items); i++ {
		rec := &a.items[i]
		if !rec.hasW {
			continue
		}
		if rec.hasPublished && rec.published.Eq(&rec.w) {
			continue
		}
		if err := a.publishAbs(rec.id, rec.w); err != nil {
			return false
		}
	}
	for i := 0; i < len(a.items); i++ {
		rec := &a.items[i]
		if !rec.hasPending || rec.pending.IsZero() {
			continue
		}
		if err := a.publishDelta(rec.id, rec.pending); err != nil {
			return false
		}
	}
	// Drop predicted writes that never happened (deterministic revert or
	// path divergence): without this, parked readers would wait forever.
	// The drops run in sorted item order — map iteration would randomize
	// the schedule between otherwise identical executions, which the flight
	// recorder's deterministic replay relies on being reproducible.
	if csag := a.rt.csag; csag != nil {
		drop := func(id sag.ItemID) bool {
			if i := a.find(id); i >= 0 && (a.items[i].hasPublished || a.items[i].publishedDel) {
				return true
			}
			if g := a.r.gate; g != nil {
				if !g.Await(OpDrop, a.rt.idx, a.inc, id, a.deadFn) {
					return false
				}
			}
			victims, err := a.rt.dropUnperformed(a.r, a.inc, id)
			if g := a.r.gate; g != nil {
				g.Done()
			}
			if err != nil {
				return false
			}
			for _, vic := range victims {
				a.r.abort(vic, a.rt.idx)
			}
			return true
		}
		a.scratch = a.scratch[:0]
		for id := range csag.Writes {
			a.scratch = append(a.scratch, id)
		}
		sortItems(a.scratch)
		for _, id := range a.scratch {
			if !drop(id) {
				return false
			}
		}
		a.scratch = a.scratch[:0]
		for id := range csag.Deltas {
			a.scratch = append(a.scratch, id)
		}
		sortItems(a.scratch)
		for _, id := range a.scratch {
			if !drop(id) {
				return false
			}
		}
	}
	if g := a.r.gate; g != nil {
		if !g.Await(OpCommit, a.rt.idx, a.inc, sag.ItemID{}, a.deadFn) {
			return false
		}
		defer g.Done()
	}
	// The committed trace owns the events backing array from here on; hand
	// the accessor back without it.
	events := a.events
	a.events = nil
	return a.rt.complete(a.r, a.inc, receipt, &TxTrace{Gas: ExecCost(receipt.GasUsed, a.intrins), Events: events})
}

// itemLess orders ItemIDs (kind, address, slot) for deterministic iteration.
func itemLess(a, b sag.ItemID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if c := bytes.Compare(a.Addr[:], b.Addr[:]); c != 0 {
		return c < 0
	}
	return bytes.Compare(a.Slot[:], b.Slot[:]) < 0
}

// sortItems insertion-sorts ids in place: the slices here are the handful of
// predicted-but-unperformed writes of one transaction, far below the
// crossover where an allocation-free insertion sort loses to sort.Slice.
func sortItems(ids []sag.ItemID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && itemLess(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
