package core

import (
	"dmvcc/internal/evm"
	"dmvcc/internal/fault"
	"dmvcc/internal/sag"
	"dmvcc/internal/telemetry"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// accessor is the evm.State implementation backing one transaction
// incarnation under DMVCC. Reads resolve through the access sequences
// (blocking on pending predecessor versions); writes buffer locally in W
// and become visible through versionWrite — either early, at a release
// point, or at transaction finish. Its delta/degrade protocol mirrors
// sag.recorder exactly so C-SAG predictions line up with runtime behaviour.
type accessor struct {
	r   *run
	rt  *txRuntime
	inc int

	w         map[sag.ItemID]u256.Int // buffered absolute writes
	wCode     map[sag.ItemID][]byte
	touch     map[sag.ItemID]touchKind
	pending   map[sag.ItemID]u256.Int // accumulated unpublished deltas
	readCache map[sag.ItemID]u256.Int
	writeEvts map[sag.ItemID]int

	published    map[sag.ItemID]u256.Int // early-published values (abs)
	publishedDel map[sag.ItemID]struct{} // items with published delta parts

	journal []undo
	snaps   []int

	armDelta     bool
	armStore     bool
	deltaPending *sag.ItemID
	drained      bool // no unpublished release-eligible writes remain

	// Virtual-time trace: topGas is the top frame's starting gas, offset
	// the gas consumed so far (top-frame view), events the dependency log.
	topGas  uint64
	offset  uint64
	events  []TraceEvent
	intrins uint64

	// worker is the pool goroutine executing this incarnation (telemetry
	// track id); inFinish flags finish-time publishes so the tracer can
	// distinguish them from early-write visibility.
	worker   int
	inFinish bool

	// Fault-injection arming, decided once per incarnation (all zero when
	// no injector is attached — the production path).
	panicAfter    int  // instruction countdown to an injected panic
	forceStale    bool // force-abort the next sequence read
	suppressEarly bool // suppress release-point early publication
}

// touchKind mirrors the analyzer's classification states.
type touchKind uint8

const (
	touchNone touchKind = iota
	touchRead
	touchDelta
	touchWritten
)

var (
	_ evm.State        = (*accessor)(nil)
	_ evm.BalanceAdder = (*accessor)(nil)
)

// newAccessor builds the state view of one incarnation. The item maps are
// initialized lazily on first write — a plain transfer touches two or three
// of them, so eager allocation of all eight dominated the per-incarnation
// allocation count.
func newAccessor(r *run, rt *txRuntime, inc int) *accessor {
	a := &accessor{
		r:       r,
		rt:      rt,
		inc:     inc,
		intrins: evm.IntrinsicGas(rt.tx.Data),
	}
	if in := r.faults; in.Enabled() {
		a.armFaults(in)
	}
	return a
}

// armFaults draws this incarnation's fault decisions up front (one hash per
// armed point), so the per-instruction hot path only tests plain fields.
func (a *accessor) armFaults(in *fault.Injector) {
	blockN := int64(a.r.block.Number)
	if ok, roll := in.Draw(fault.WorkerPanic, blockN, a.rt.idx, a.inc); ok {
		// Panic mid-transaction: after a deterministic, roll-derived number
		// of instructions (between VM steps, no scheduler locks held).
		a.panicAfter = 1 + int((roll>>33)%24)
	}
	a.forceStale = in.Fire(fault.SnapshotStale, blockN, a.rt.idx, a.inc)
	a.suppressEarly = in.Fire(fault.DelayEarlyPublish, blockN, a.rt.idx, a.inc)
}

// dead reports whether this incarnation has been aborted.
func (a *accessor) dead() bool { return a.rt.curInc() != a.inc }

// --- journaling -----------------------------------------------------------

// undoKind selects which accessor map an undo record restores.
type undoKind uint8

const (
	undoTouch undoKind = iota + 1
	undoW
	undoWCode
	undoPending
)

// undo is one typed entry of the revert journal. The previous closure-based
// journal allocated a captured closure per mutation on the hottest write
// path; typed records cost nothing beyond amortized slice growth.
type undo struct {
	kind undoKind
	had  bool
	tk   touchKind
	id   sag.ItemID
	val  u256.Int
	code []byte
}

// revert undoes one journal record.
func (a *accessor) revert(u *undo) {
	switch u.kind {
	case undoTouch:
		if u.had {
			a.touch[u.id] = u.tk
		} else {
			delete(a.touch, u.id)
		}
	case undoW:
		if u.had {
			a.w[u.id] = u.val
		} else {
			delete(a.w, u.id)
		}
	case undoWCode:
		if u.had {
			a.wCode[u.id] = u.code
		} else {
			delete(a.wCode, u.id)
		}
	case undoPending:
		if u.had {
			a.pending[u.id] = u.val
		} else {
			delete(a.pending, u.id)
		}
	}
}

func (a *accessor) setTouch(id sag.ItemID, t touchKind) {
	if a.touch == nil {
		a.touch = make(map[sag.ItemID]touchKind)
	}
	prev, had := a.touch[id]
	a.journal = append(a.journal, undo{kind: undoTouch, had: had, tk: prev, id: id})
	a.touch[id] = t
}

func (a *accessor) setW(id sag.ItemID, v u256.Int) {
	if a.w == nil {
		a.w = make(map[sag.ItemID]u256.Int)
	}
	prev, had := a.w[id]
	a.journal = append(a.journal, undo{kind: undoW, had: had, val: prev, id: id})
	a.w[id] = v
	a.drained = false
}

func (a *accessor) setWCode(id sag.ItemID, code []byte) {
	if a.wCode == nil {
		a.wCode = make(map[sag.ItemID][]byte)
	}
	prev, had := a.wCode[id]
	a.journal = append(a.journal, undo{kind: undoWCode, had: had, code: prev, id: id})
	a.wCode[id] = code
	a.drained = false
}

func (a *accessor) addPending(id sag.ItemID, v *u256.Int) {
	if a.pending == nil {
		a.pending = make(map[sag.ItemID]u256.Int)
	}
	prev, had := a.pending[id]
	a.journal = append(a.journal, undo{kind: undoPending, had: had, val: prev, id: id})
	var next u256.Int
	next.Add(&prev, v)
	a.pending[id] = next
	a.drained = false
}

func (a *accessor) dropPendingJ(id sag.ItemID) {
	prev, had := a.pending[id]
	if !had {
		return
	}
	a.journal = append(a.journal, undo{kind: undoPending, had: true, val: prev, id: id})
	delete(a.pending, id)
}

// Snapshot implements evm.State.
func (a *accessor) Snapshot() int {
	a.snaps = append(a.snaps, len(a.journal))
	return len(a.snaps) - 1
}

// RevertToSnapshot implements evm.State.
func (a *accessor) RevertToSnapshot(rev int) {
	mark := a.snaps[rev]
	for i := len(a.journal) - 1; i >= mark; i-- {
		a.revert(&a.journal[i])
	}
	a.journal = a.journal[:mark]
	a.snaps = a.snaps[:rev]
}

// --- read path --------------------------------------------------------------

// snapValue reads the committed snapshot value of an item.
func (a *accessor) snapValue(id sag.ItemID) u256.Int {
	switch id.Kind {
	case sag.KindStorage:
		return a.r.snap.Storage(id.Addr, id.Slot)
	case sag.KindBalance:
		return a.r.snap.Balance(id.Addr)
	case sag.KindNonce:
		return u256.NewUint64(a.r.snap.Nonce(id.Addr))
	default:
		return u256.Int{}
	}
}

// readItem resolves a cross-transaction read through the access sequence,
// suspending this transaction (and yielding its execution slot) while the
// required version is pending. Re-attempts pass the previous waiter back so
// the scan resumes from the entry it parked on instead of rescanning the
// whole prefix.
func (a *accessor) readItem(id sag.ItemID) (u256.Int, error) {
	if a.forceStale {
		// Injected snapshot staleness: retire this incarnation as if the
		// read had been resolved from a stale snapshot and invalidated. The
		// abort path relaunches it (the fresh incarnation draws its own
		// fault decisions), so the block still converges.
		a.forceStale = false
		a.r.abortClassed(victim{tx: a.rt.idx, inc: a.inc, item: id, readSrc: -1}, a.rt.idx, telemetry.AbortInjected)
		return u256.Int{}, evm.ErrAborted
	}
	seq := a.r.seq(id)
	var w *seqWaiter
	for {
		if a.dead() {
			seq.cancelWaiter(w)
			return u256.Int{}, evm.ErrAborted
		}
		snap := a.snapValue(id)
		val, res, next := seq.tryRead(a.rt.idx, a.inc, snap, a.dead, w)
		if res == readAborted {
			return u256.Int{}, evm.ErrAborted
		}
		if res != readBlocked {
			a.rt.noteReadMark(a.inc, id)
			a.events = append(a.events, TraceEvent{Kind: TraceRead, Item: id, Offset: a.offset})
			if fx := a.r.forensics; fx.Enabled() {
				fx.RecordRead(id)
			}
			return val, nil
		}
		w = next
		a.r.stats.addBlocked()
		if fx := a.r.forensics; fx.Enabled() {
			fx.RecordBlockedRead(id)
		}
		if tr := a.r.tracer; tr.Enabled() {
			tr.Emit(telemetry.EvPark, a.rt.idx, a.inc, a.worker, id, w.blockedTx)
		}
		a.r.sched.yield()
		select {
		case <-w.ch:
		case <-a.rt.abortChan(a.inc):
		}
		a.r.sched.reacquire(a.rt.idx)
		if tr := a.r.tracer; tr.Enabled() {
			tr.Emit(telemetry.EvResume, a.rt.idx, a.inc, a.worker, id, w.blockedTx)
		}
	}
}

// readValue is the common read path with caching and W-buffer hits.
func (a *accessor) readValue(id sag.ItemID) (u256.Int, error) {
	if v, ok := a.w[id]; ok {
		return v, nil
	}
	if a.touch[id] == touchDelta {
		return a.degradeRead(id)
	}
	if v, ok := a.readCache[id]; ok {
		return v, nil
	}
	val, err := a.readItem(id)
	if err != nil {
		return u256.Int{}, err
	}
	a.cacheRead(id, val)
	if a.touch[id] == touchNone {
		a.setTouch(id, touchRead)
	}
	return val, nil
}

// cacheRead memoizes a resolved read (lazy map).
func (a *accessor) cacheRead(id sag.ItemID, v u256.Int) {
	if a.readCache == nil {
		a.readCache = make(map[sag.ItemID]u256.Int)
	}
	a.readCache[id] = v
}

// bumpWriteEvt counts a write event against the C-SAG prediction (lazy map).
func (a *accessor) bumpWriteEvt(id sag.ItemID) {
	if a.writeEvts == nil {
		a.writeEvts = make(map[sag.ItemID]int)
	}
	a.writeEvts[id]++
}

// degradeRead converts a delta-mode item to a normal read-modify-write: the
// true base is resolved (blocking), the accumulated unpublished delta
// applied, and the item moves into the absolute write buffer. Any part of
// the delta already published early stays in the sequence as ω̄ — the sum
// remains exact.
func (a *accessor) degradeRead(id sag.ItemID) (u256.Int, error) {
	base, err := a.readItem(id)
	if err != nil {
		return u256.Int{}, err
	}
	delta := a.pending[id]
	var val u256.Int
	val.Add(&base, &delta)
	a.dropPendingJ(id)
	a.setTouch(id, touchWritten)
	a.setW(id, val)
	a.cacheRead(id, base)
	return val, nil
}

// --- write path -------------------------------------------------------------

func (a *accessor) writeAbs(id sag.ItemID, v u256.Int) error {
	if a.r.opts.DisableWriteVersioning && a.touch[id] == touchNone {
		// Single-version emulation: the first write to an item stalls until
		// every earlier writer finished (ww conflicts restored). The stall
		// is also recorded as a read-like trace dependency so the virtual
		// scheduling simulator reproduces the serialization.
		if err := a.waitPriorWrites(id); err != nil {
			return err
		}
		a.events = append(a.events, TraceEvent{Kind: TraceRead, Item: id, Offset: a.offset})
	}
	if a.touch[id] == touchDelta {
		a.dropPendingJ(id)
	}
	a.setTouch(id, touchWritten)
	a.setW(id, v)
	a.bumpWriteEvt(id)
	return nil
}

// waitPriorWrites parks until lower-indexed writers of id are finished.
func (a *accessor) waitPriorWrites(id sag.ItemID) error {
	seq := a.r.seq(id)
	var w *seqWaiter
	for {
		if a.dead() {
			seq.cancelWaiter(w)
			return evm.ErrAborted
		}
		pending, next := seq.priorWritesPending(a.rt.idx, a.dead, w)
		if !pending {
			return nil
		}
		if next == nil {
			return evm.ErrAborted // incarnation retired while registering
		}
		w = next
		a.r.stats.addBlocked()
		if fx := a.r.forensics; fx.Enabled() {
			fx.RecordBlockedRead(id)
		}
		if tr := a.r.tracer; tr.Enabled() {
			tr.Emit(telemetry.EvPark, a.rt.idx, a.inc, a.worker, id, w.blockedTx)
		}
		a.r.sched.yield()
		select {
		case <-w.ch:
		case <-a.rt.abortChan(a.inc):
		}
		a.r.sched.reacquire(a.rt.idx)
		if tr := a.r.tracer; tr.Enabled() {
			tr.Emit(telemetry.EvResume, a.rt.idx, a.inc, a.worker, id, w.blockedTx)
		}
	}
}

// --- evm.State --------------------------------------------------------------

// GetState implements evm.State.
func (a *accessor) GetState(addr types.Address, key types.Hash) (u256.Int, error) {
	id := sag.StorageItem(addr, key)
	if a.armDelta {
		a.armDelta = false
		if t := a.touch[id]; t == touchNone || t == touchDelta {
			if t == touchNone {
				a.setTouch(id, touchDelta)
			}
			a.deltaPending = &id
			return u256.Int{}, nil
		}
	}
	return a.readValue(id)
}

// SetState implements evm.State.
func (a *accessor) SetState(addr types.Address, key types.Hash, v u256.Int) error {
	id := sag.StorageItem(addr, key)
	if a.armStore {
		a.armStore = false
		if a.deltaPending != nil && *a.deltaPending == id {
			a.deltaPending = nil
			a.addPending(id, &v)
			a.bumpWriteEvt(id)
			return nil
		}
	}
	return a.writeAbs(id, v)
}

// GetBalance implements evm.State.
func (a *accessor) GetBalance(addr types.Address) (u256.Int, error) {
	return a.readValue(sag.BalanceItem(addr))
}

// SetBalance implements evm.State.
func (a *accessor) SetBalance(addr types.Address, v u256.Int) error {
	return a.writeAbs(sag.BalanceItem(addr), v)
}

// AddBalance implements evm.BalanceAdder: blind credits stay deltas.
func (a *accessor) AddBalance(addr types.Address, delta u256.Int) error {
	id := sag.BalanceItem(addr)
	if t := a.touch[id]; !a.r.opts.DisableCommutative && (t == touchNone || t == touchDelta) {
		if t == touchNone {
			a.setTouch(id, touchDelta)
		}
		a.addPending(id, &delta)
		a.bumpWriteEvt(id)
		return nil
	}
	cur, err := a.readValue(id)
	if err != nil {
		return err
	}
	var next u256.Int
	next.Add(&cur, &delta)
	return a.writeAbs(id, next)
}

// GetNonce implements evm.State.
func (a *accessor) GetNonce(addr types.Address) (uint64, error) {
	v, err := a.readValue(sag.NonceItem(addr))
	if err != nil {
		return 0, err
	}
	return v.Uint64(), nil
}

// setNonceInner writes the nonce value (error only from ablation stalls).
// SetNonce implements evm.State. Protocol nonce bumps are unconditional —
// they survive deterministic reverts and out-of-gas — so the value is final
// the moment it is written and can be published immediately, without
// waiting for a release point. This keeps same-sender transaction chains
// from serializing on the nonce.
func (a *accessor) SetNonce(addr types.Address, v uint64) error {
	id := sag.NonceItem(addr)
	w := u256.NewUint64(v)
	if err := a.writeAbs(id, w); err != nil {
		return err
	}
	if !a.r.opts.DisableEarlyWrite {
		if err := a.publishAbs(id, w); err != nil {
			return err
		}
		a.r.stats.addEarly()
	}
	return nil
}

// GetCode implements evm.State.
func (a *accessor) GetCode(addr types.Address) ([]byte, error) {
	id := sag.CodeItem(addr)
	if code, ok := a.wCode[id]; ok {
		return code, nil
	}
	val, err := a.readValue(id)
	if err != nil {
		return nil, err
	}
	if val.IsZero() {
		// No in-block deployment: committed code.
		return a.r.snap.Code(addr), nil
	}
	return a.r.codeOf(types.HashFromWord(val)), nil
}

// SetCode implements evm.State.
func (a *accessor) SetCode(addr types.Address, code []byte) error {
	id := sag.CodeItem(addr)
	h := a.r.storeCode(code)
	a.setTouch(id, touchWritten)
	a.setWCode(id, code)
	a.setW(id, h.Word())
	a.bumpWriteEvt(id)
	return nil
}

// --- hook: abort checks, commutative arming, release points ----------------

// hook runs before every instruction: it stops dead incarnations, arms the
// commutative sites, and performs Algorithm 2's early-write visibility at
// release points.
func (a *accessor) hook(addr types.Address, depth int, pc uint64, op evm.Opcode, gasLeft uint64) error {
	if a.dead() {
		return evm.ErrAborted
	}
	if a.panicAfter > 0 {
		if a.panicAfter--; a.panicAfter == 0 {
			// Between instructions, no scheduler locks held: the safest spot
			// a genuine opcode-handler panic would surface from.
			panic(&fault.InjectedPanic{Block: int64(a.r.block.Number), Tx: a.rt.idx, Inc: a.inc})
		}
	}
	if depth == 1 {
		if a.topGas == 0 {
			a.topGas = gasLeft
		}
		a.offset = BaseCost + a.topGas - gasLeft
	}
	var info *sag.ContractInfo
	if !a.r.opts.DisableCommutative {
		switch op {
		case evm.SLOAD:
			if info = a.r.reg.Lookup(addr); info != nil {
				if _, ok := info.CommLoads[pc]; ok {
					a.armDelta = true
				}
			}
		case evm.SSTORE:
			if info = a.r.reg.Lookup(addr); info != nil && info.CommStores[pc] {
				a.armStore = true
			}
		}
	}
	if depth != 1 || a.drained || a.r.opts.DisableEarlyWrite || a.suppressEarly {
		return nil
	}
	if info == nil {
		info = a.r.reg.Lookup(addr)
	}
	if info == nil || !info.Released(pc, gasLeft) {
		return nil
	}
	a.earlyPublish()
	return nil
}

// earlyPublish makes buffered writes visible before commit (Algorithm 2):
// an item is published once its predicted write events have all happened
// (no write of it remains in the C-SAG's future).
func (a *accessor) earlyPublish() {
	csag := a.rt.csag
	if csag == nil {
		a.drained = true // nothing predicted: publish only at finish
		return
	}
	remaining := false
	for id, v := range a.w {
		if prev, done := a.published[id]; done && prev.Eq(&v) {
			continue
		}
		predicted, ok := csag.Writes[id]
		if !ok || a.writeEvts[id] < predicted {
			if !ok {
				continue // unpredicted: finish-time only
			}
			remaining = true
			continue
		}
		if err := a.publishAbs(id, v); err != nil {
			return
		}
		a.r.stats.addEarly()
	}
	for id, d := range a.pending {
		if d.IsZero() {
			continue
		}
		predicted, ok := csag.Deltas[id]
		if !ok || a.writeEvts[id] < predicted {
			if ok {
				remaining = true
			}
			continue
		}
		if err := a.publishDelta(id, d); err != nil {
			return
		}
		a.r.stats.addEarly()
	}
	a.drained = !remaining
}

// publishAbs inserts/updates this transaction's absolute version of id.
func (a *accessor) publishAbs(id sag.ItemID, v u256.Int) error {
	victims, err := a.rt.publish(a.r, a.inc, id, v, false)
	if err != nil {
		return err
	}
	if a.published == nil {
		a.published = make(map[sag.ItemID]u256.Int)
	}
	a.published[id] = v
	a.r.noteProgress()
	a.events = append(a.events, TraceEvent{Kind: TraceWrite, Item: id, Offset: a.offset})
	if fx := a.r.forensics; fx.Enabled() {
		fx.RecordWrite(id, !a.inFinish)
	}
	if tr := a.r.tracer; tr.Enabled() {
		kind := telemetry.EvEarlyPublish
		if a.inFinish {
			kind = telemetry.EvPublish
		}
		tr.Emit(kind, a.rt.idx, a.inc, a.worker, id, -1)
	}
	for _, vic := range victims {
		a.r.abort(vic, a.rt.idx)
	}
	return nil
}

// publishDelta publishes an accumulated delta contribution and clears the
// local pending amount (later increments accumulate on the same entry).
func (a *accessor) publishDelta(id sag.ItemID, d u256.Int) error {
	victims, err := a.rt.publish(a.r, a.inc, id, d, true)
	if err != nil {
		return err
	}
	delete(a.pending, id)
	if a.publishedDel == nil {
		a.publishedDel = make(map[sag.ItemID]struct{})
	}
	a.publishedDel[id] = struct{}{}
	a.r.noteProgress()
	a.events = append(a.events, TraceEvent{Kind: TraceDelta, Item: id, Offset: a.offset})
	a.r.stats.addDelta()
	if fx := a.r.forensics; fx.Enabled() {
		fx.RecordDelta(id)
	}
	if tr := a.r.tracer; tr.Enabled() {
		tr.Emit(telemetry.EvDeltaPublish, a.rt.idx, a.inc, a.worker, id, -1)
	}
	for _, vic := range victims {
		a.r.abort(vic, a.rt.idx)
	}
	return nil
}

// finish publishes every remaining write, drops predicted writes that never
// materialized (so parked readers fall through to earlier versions), and
// records the receipt. It returns false if the incarnation died mid-way.
func (a *accessor) finish(receipt *types.Receipt) bool {
	a.inFinish = true
	a.offset = ExecCost(receipt.GasUsed, a.intrins)
	for id, v := range a.w {
		if prev, done := a.published[id]; done && prev.Eq(&v) {
			continue
		}
		if err := a.publishAbs(id, v); err != nil {
			return false
		}
	}
	for id, d := range a.pending {
		if d.IsZero() {
			continue
		}
		if err := a.publishDelta(id, d); err != nil {
			return false
		}
	}
	// Drop predicted writes that never happened (deterministic revert or
	// path divergence): without this, parked readers would wait forever.
	if csag := a.rt.csag; csag != nil {
		drop := func(id sag.ItemID) bool {
			if _, ok := a.published[id]; ok {
				return true
			}
			if _, ok := a.publishedDel[id]; ok {
				return true
			}
			victims, err := a.rt.dropUnperformed(a.r, a.inc, id)
			if err != nil {
				return false
			}
			for _, vic := range victims {
				a.r.abort(vic, a.rt.idx)
			}
			return true
		}
		for id := range csag.Writes {
			if !drop(id) {
				return false
			}
		}
		for id := range csag.Deltas {
			if !drop(id) {
				return false
			}
		}
	}
	return a.rt.complete(a.inc, receipt, &TxTrace{Gas: ExecCost(receipt.GasUsed, a.intrins), Events: a.events})
}
