package core

import (
	"sync"
	"testing"
	"time"
)

// TestPoolLowestIndexFirst: with one slot held by the first task, later
// enqueues in scrambled order must be dispatched lowest-index-first.
func TestPoolLowestIndexFirst(t *testing.T) {
	var mu sync.Mutex
	var order []int
	release := make(chan struct{})
	var wg sync.WaitGroup
	var p *pool
	p = newPool(1, func(idx, _ int) {
		if idx == 0 {
			<-release // hold the only slot while the rest queue up
		}
		mu.Lock()
		order = append(order, idx)
		mu.Unlock()
		wg.Done()
	})
	wg.Add(5)
	p.enqueue(0)
	for _, idx := range []int{9, 3, 7, 1} {
		p.enqueue(idx)
	}
	close(release)
	wg.Wait()
	p.shutdown()

	want := []int{0, 1, 3, 7, 9}
	for i, idx := range want {
		if order[i] != idx {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

// TestPoolWorkerReuse: a pool never spawns more workers than its thread
// count when tasks do not park — the per-transaction goroutine is gone.
func TestPoolWorkerReuse(t *testing.T) {
	var wg sync.WaitGroup
	p := newPool(2, func(int, int) { wg.Done() })
	wg.Add(64)
	p.enqueueAll(64)
	wg.Wait()
	p.shutdown()
	if n := p.workersSpawned(); n > 2 {
		t.Errorf("spawned %d workers for 64 tasks on 2 threads, want <= 2", n)
	}
}

// TestPoolResumePriority: parked transactions re-acquire the slot one at a
// time, lowest index first — each hand-off wakes exactly one goroutine.
func TestPoolResumePriority(t *testing.T) {
	block := make(chan struct{})
	p := newPool(1, func(int, int) { <-block })
	p.enqueue(0) // occupies the only slot

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for _, idx := range []int{8, 2, 5} {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			p.reacquire(idx)
			mu.Lock()
			order = append(order, idx)
			mu.Unlock()
			p.yield() // pass the slot on
		}(idx)
	}
	// Wait for all three to park in the resumer heap before freeing the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		n := len(p.resume)
		p.mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resumers never parked")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	p.shutdown()

	want := []int{2, 5, 8}
	for i, idx := range want {
		if order[i] != idx {
			t.Fatalf("resume order = %v, want %v", order, want)
		}
	}
}
