package core_test

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"dmvcc/internal/baseline"
	"dmvcc/internal/core"
	"dmvcc/internal/fault"
	"dmvcc/internal/sag"
	"dmvcc/internal/telemetry"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

// chaosTxs is a contended mix: dependent token transfers, commutative ICO
// buys, an NFT mint chain and re-keyed indirect writes — every scheduler
// mechanism (early publish, deltas, parking, cascades) is in play while
// faults fire.
func chaosTxs(n int) []*types.Transaction {
	r := rand.New(rand.NewSource(int64(n)))
	var txs []*types.Transaction
	for i := 0; i < n; i++ {
		from := user(r.Intn(64))
		switch i % 5 {
		case 0:
			txs = append(txs, call(from, tokenAddr, 0, "transfer",
				user(r.Intn(64)).Word(), u256.NewUint64(uint64(r.Intn(12_000)))))
		case 1:
			txs = append(txs, call(from, icoAddr, uint64(1+r.Intn(500)), "buy"))
		case 2:
			txs = append(txs, call(from, nftAddr, 0, "mintNFT"))
		case 3:
			txs = append(txs, call(from, indirAddr, 0, "setKey",
				u256.NewUint64(uint64(r.Intn(4))), u256.NewUint64(uint64(r.Intn(8)))))
		default:
			txs = append(txs, call(from, indirAddr, 0, "writeAt",
				u256.NewUint64(uint64(r.Intn(4))), u256.NewUint64(uint64(r.Intn(1000)))))
		}
	}
	return txs
}

// chaosRun executes txs through a fault-injected executor and asserts the
// committed root is byte-identical to the serial baseline (Theorem 1 must
// survive every injected fault). Returns the DMVCC stats.
func chaosRun(t *testing.T, txs []*types.Transaction, threads int, cfg fault.Config, hard core.Hardening) core.Stats {
	t.Helper()
	dbSerial, _ := fixture(t)
	serial, err := baseline.ExecuteSerial(dbSerial, blk, txs)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	rootSerial, err := dbSerial.Commit(serial.WriteSet)
	if err != nil {
		t.Fatal(err)
	}

	db, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExecutor(reg, threads)
	ex.SetFaults(fault.New(cfg))
	ex.SetHardening(hard)
	res, err := ex.ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	root, err := db.Commit(res.WriteSet)
	if err != nil {
		t.Fatal(err)
	}
	if root != rootSerial {
		t.Fatalf("chaos run diverged from serial: %s != %s (stats %+v)", root, rootSerial, res.Stats)
	}
	for i := range txs {
		if serial.Receipts[i].Status != res.Receipts[i].Status {
			t.Errorf("tx %d status: serial %s, chaos %s", i, serial.Receipts[i].Status, res.Receipts[i].Status)
		}
	}
	return res.Stats
}

// TestPanicContainment injects worker panics mid-transaction at a high rate:
// every panic must be contained (worker survives, incarnation aborts and
// relaunches) and the block must still commit the serial root.
func TestPanicContainment(t *testing.T) {
	stats := chaosRun(t, chaosTxs(40), 8,
		fault.Config{Seed: 7, Rates: map[fault.Point]float64{fault.WorkerPanic: 0.6}},
		core.Hardening{})
	if stats.Panics == 0 {
		t.Error("no panics fired at rate 0.6; injection points not reached")
	}
	if stats.Degraded {
		t.Errorf("contained panics must not degrade the block: %s", stats.DegradeReason)
	}
}

// TestDelayAndSuppressedPublishFaults slows incarnations down and suppresses
// early-write visibility: pure timing faults that must never change the
// committed state.
func TestDelayAndSuppressedPublishFaults(t *testing.T) {
	stats := chaosRun(t, chaosTxs(32), 8,
		fault.Config{
			Seed:  11,
			Delay: 100 * time.Microsecond,
			Rates: map[fault.Point]float64{
				fault.ExecDelay:         0.5,
				fault.DelayEarlyPublish: 1.0,
			},
		},
		core.Hardening{})
	if stats.Degraded {
		t.Errorf("timing faults degraded the block: %s", stats.DegradeReason)
	}
}

// TestCSAGCorruptionFaults corrupts predicted read/write/delta sets through
// the executor's own injection hook: mispredictions force the dynamic
// (unpredicted-write) machinery and the root must still match serial.
func TestCSAGCorruptionFaults(t *testing.T) {
	for _, threads := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			chaosRun(t, chaosTxs(36), threads,
				fault.Config{Seed: 13, Rates: map[fault.Point]float64{
					fault.CSAGDropRead:  0.4,
					fault.CSAGDropWrite: 0.4,
					fault.CSAGDropDelta: 0.4,
				}},
				core.Hardening{})
		})
	}
}

// TestSnapshotStaleFaults force-aborts a fraction of incarnations as if
// their snapshot reads were stale (spurious aborts are always safe).
func TestSnapshotStaleFaults(t *testing.T) {
	stats := chaosRun(t, chaosTxs(32), 8,
		fault.Config{Seed: 17, Rates: map[fault.Point]float64{fault.SnapshotStale: 0.3}},
		core.Hardening{})
	if stats.Aborts == 0 {
		t.Error("no aborts at stale rate 0.3")
	}
}

// TestMixedFaultStorm fires every executor-level fault class at once.
func TestMixedFaultStorm(t *testing.T) {
	chaosRun(t, chaosTxs(48), 8,
		fault.Config{
			Seed:  23,
			Delay: 50 * time.Microsecond,
			Rates: map[fault.Point]float64{
				fault.WorkerPanic:       0.2,
				fault.ExecDelay:         0.3,
				fault.CSAGDropRead:      0.25,
				fault.CSAGDropWrite:     0.25,
				fault.CSAGDropDelta:     0.25,
				fault.SnapshotStale:     0.2,
				fault.DelayEarlyPublish: 0.5,
			},
		},
		core.Hardening{})
}

// TestBreakerDegradesToSerial drives an unbounded abort storm (every
// incarnation rolls a stale read) into a tight incarnation cap: the breaker
// must trip, degrade the block to the serial baseline mid-flight, commit the
// byte-identical serial root, and surface the reason in Stats.
func TestBreakerDegradesToSerial(t *testing.T) {
	stats := chaosRun(t, chaosTxs(16), 4,
		fault.Config{Seed: 29, Rates: map[fault.Point]float64{fault.SnapshotStale: 1.0}},
		core.Hardening{MaxTxIncarnations: 4})
	if !stats.Degraded {
		t.Fatalf("abort storm did not trip the breaker: %+v", stats)
	}
	if !strings.Contains(stats.DegradeReason, "incarnation cap") {
		t.Errorf("degrade reason = %q, want the incarnation cap", stats.DegradeReason)
	}
	if stats.MaxIncarnation < 4 {
		t.Errorf("MaxIncarnation = %d, want >= cap 4", stats.MaxIncarnation)
	}
}

// TestBreakerWastedGasBudget trips the breaker on the cascade wasted-gas
// budget instead of the per-tx cap.
func TestBreakerWastedGasBudget(t *testing.T) {
	stats := chaosRun(t, chaosTxs(16), 4,
		fault.Config{Seed: 31, Rates: map[fault.Point]float64{fault.SnapshotStale: 1.0}},
		core.Hardening{WastedGasBudget: 50 * core.BaseCost})
	if !stats.Degraded {
		t.Fatalf("wasted-gas storm did not trip the breaker: %+v", stats)
	}
	if !strings.Contains(stats.DegradeReason, "wasted-gas") {
		t.Errorf("degrade reason = %q, want a wasted-gas budget trip", stats.DegradeReason)
	}
}

// TestBreakerDisableFallback pins the strict mode: with fallback disabled a
// trip surfaces as ErrCircuitBreaker instead of a degraded result.
func TestBreakerDisableFallback(t *testing.T) {
	db, reg := fixture(t)
	txs := chaosTxs(12)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExecutor(reg, 4)
	ex.SetFaults(fault.New(fault.Config{Seed: 37, Rates: map[fault.Point]float64{fault.SnapshotStale: 1.0}}))
	ex.SetHardening(core.Hardening{MaxTxIncarnations: 4, DisableFallback: true})
	_, err = ex.ExecuteBlock(db, blk, txs, csags)
	if !errors.Is(err, core.ErrCircuitBreaker) {
		t.Fatalf("err = %v, want ErrCircuitBreaker", err)
	}
}

// TestWatchdogRecoversFromStall wedges the first incarnations in a long
// injected sleep (longer than the watchdog deadline) with the fire limit set
// so relaunched incarnations run clean: the watchdog must detect the frozen
// progress counter, force-abort the sleepers, and let the block finish
// healthy — correct root, no degradation, recovery visible in Stats.
func TestWatchdogRecoversFromStall(t *testing.T) {
	stats := chaosRun(t, chaosTxs(8), 2,
		fault.Config{
			Seed:   41,
			Delay:  30 * time.Second,
			Rates:  map[fault.Point]float64{fault.ExecDelay: 1.0},
			Limits: map[fault.Point]int{fault.ExecDelay: 2},
		},
		core.Hardening{StallTimeout: 100 * time.Millisecond, StallRecoveries: 5})
	if stats.StallRecoveries == 0 {
		t.Fatal("watchdog never fired on a wedged block")
	}
	if stats.Degraded {
		t.Errorf("recoverable stall degraded the block: %s", stats.DegradeReason)
	}
}

// TestWatchdogTripsAfterRecoveries wedges every incarnation forever (no fire
// limit): after the configured recovery rounds fail to restore progress, the
// watchdog trips the breaker and the block degrades to serial.
func TestWatchdogTripsAfterRecoveries(t *testing.T) {
	fx := telemetry.NewForensics()
	fx.Enable()

	dbSerial, _ := fixture(t)
	txs := chaosTxs(6)
	serial, err := baseline.ExecuteSerial(dbSerial, blk, txs)
	if err != nil {
		t.Fatal(err)
	}
	rootSerial, err := dbSerial.Commit(serial.WriteSet)
	if err != nil {
		t.Fatal(err)
	}

	db, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExecutor(reg, 2)
	ex.SetFaults(fault.New(fault.Config{
		Seed:  43,
		Delay: 30 * time.Second,
		Rates: map[fault.Point]float64{fault.ExecDelay: 1.0},
	}))
	ex.SetForensics(fx)
	ex.SetHardening(core.Hardening{StallTimeout: 50 * time.Millisecond, StallRecoveries: 1})
	res, err := ex.ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded || !strings.Contains(res.Stats.DegradeReason, "stall") {
		t.Fatalf("stats = %+v, want a stall degradation", res.Stats)
	}
	if res.Stats.StallRecoveries < 2 {
		t.Errorf("stall recoveries = %d, want >= 2 (rounds before the trip)", res.Stats.StallRecoveries)
	}
	root, err := db.Commit(res.WriteSet)
	if err != nil {
		t.Fatal(err)
	}
	if root != rootSerial {
		t.Fatalf("degraded block diverged: %s != %s", root, rootSerial)
	}

	// The watchdog dumped diagnostics: parked-waiter/pool snapshots under
	// /telemetry and the degradation reason in the post-mortem.
	stalls := fx.Stalls(int64(blk.Number))
	if len(stalls) < 2 {
		t.Fatalf("stall reports = %d, want >= 2", len(stalls))
	}
	for i, rep := range stalls {
		if rep.Attempt != i+1 || rep.Schema != telemetry.StallSchema {
			t.Errorf("stall report %d: attempt=%d schema=%q", i, rep.Attempt, rep.Schema)
		}
		if len(rep.Pending) == 0 {
			t.Errorf("stall report %d lists no pending txs", i)
		}
	}
	pm := fx.PostMortem(int64(blk.Number))
	if pm == nil || pm.Degraded == "" || pm.Stalls != len(stalls) {
		t.Fatalf("post-mortem = %+v, want degraded reason and %d stalls", pm, len(stalls))
	}
	if !strings.Contains(pm.Render(), "DEGRADED") {
		t.Error("post-mortem render does not surface the degradation")
	}
}

// TestChaosDegradedForensics pins that a breaker trip lands in the
// forensics degradation mark (the /metrics + post-mortem surfacing path).
func TestChaosDegradedForensics(t *testing.T) {
	fx := telemetry.NewForensics()
	fx.Enable()
	db, reg := fixture(t)
	txs := chaosTxs(12)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExecutor(reg, 4)
	ex.SetFaults(fault.New(fault.Config{Seed: 47, Rates: map[fault.Point]float64{fault.SnapshotStale: 1.0}}))
	ex.SetForensics(fx)
	ex.SetHardening(core.Hardening{MaxTxIncarnations: 3})
	res, err := ex.ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded {
		t.Fatalf("expected degradation, got %+v", res.Stats)
	}
	if got := fx.Degraded(int64(blk.Number)); got != res.Stats.DegradeReason {
		t.Errorf("forensics degraded mark %q != stats reason %q", got, res.Stats.DegradeReason)
	}

	reg2 := telemetry.NewRegistry()
	res.Stats.RecordMetrics(reg2)
	if got := reg2.Counter("core.degraded_blocks").Value(); got != 1 {
		t.Errorf("core.degraded_blocks = %d, want 1", got)
	}
	if got := reg2.Counter("core.panics").Value(); got != res.Stats.Panics {
		t.Errorf("core.panics = %d, want %d", got, res.Stats.Panics)
	}
}

// TestNoGoroutineLeakOnBlockError pins the drain path: a block that fails
// mid-flight (here: an unbounded abort storm with the breaker cap disabled,
// driving one tx into the hard livelock bound) must not strand parked
// readers or pool workers — every goroutine the execution spawned exits.
func TestNoGoroutineLeakOnBlockError(t *testing.T) {
	db, reg := fixture(t)
	txs := chaosTxs(8)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ex := core.NewExecutor(reg, 4)
	ex.SetFaults(fault.New(fault.Config{Seed: 53, Rates: map[fault.Point]float64{fault.SnapshotStale: 1.0}}))
	// Disable both the breaker cap and the watchdog: the storm must run all
	// the way into ErrTooManyAborts, the fatal-error path.
	ex.SetHardening(core.Hardening{MaxTxIncarnations: -1, StallTimeout: -1})
	if _, err := ex.ExecuteBlock(db, blk, txs, csags); !errors.Is(err, core.ErrTooManyAborts) {
		t.Fatalf("err = %v, want ErrTooManyAborts", err)
	}

	// Workers and any parked waiters must wind down; allow the runtime a
	// moment to reap exited goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosDeterministicFaultPlan pins reproducibility: the same seed arms
// the same incarnations, so two runs fire an identical per-point fault plan
// for the deterministic (schedule-independent) points.
func TestChaosDeterministicFaultPlan(t *testing.T) {
	plan := func() map[string]int64 {
		in := fault.New(fault.Config{Seed: 59, Rates: map[fault.Point]float64{
			fault.CSAGDropRead:  0.5,
			fault.CSAGDropWrite: 0.5,
			fault.CSAGDropDelta: 0.5,
		}})
		db, reg := fixture(t)
		txs := chaosTxs(24)
		an := sag.NewAnalyzer(reg)
		csags, err := an.AnalyzeBlock(txs, db, blk)
		if err != nil {
			t.Fatal(err)
		}
		ex := core.NewExecutor(reg, 4)
		ex.SetFaults(in)
		if _, err := ex.ExecuteBlock(db, blk, txs, csags); err != nil {
			t.Fatal(err)
		}
		return in.Counts()
	}
	a, b := plan(), plan()
	for p, n := range a {
		if b[p] != n {
			t.Errorf("point %s fired %d then %d times under the same seed", p, n, b[p])
		}
	}
}

// benchExecuteFaults mirrors benchExecuteForensics for the fault layer.
func benchExecuteFaults(b *testing.B, in *fault.Injector) {
	b.Helper()
	txs := benchTxs()
	db, reg := fixture(b)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		b.Fatal(err)
	}
	ex := core.NewExecutor(reg, 8)
	ex.SetFaults(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.ExecuteBlock(db, blk, txs, csags); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultNone is the production baseline: no injector attached.
func BenchmarkFaultNone(b *testing.B) {
	benchExecuteFaults(b, nil)
}

// BenchmarkFaultDisabled attaches a zero-rate injector: every injection
// point pays the nil/active check and nothing else. The contract is that
// this stays within noise of BenchmarkFaultNone (the disabled fault layer
// must not move the PR 4 hot-path numbers).
func BenchmarkFaultDisabled(b *testing.B) {
	benchExecuteFaults(b, fault.New(fault.Config{Seed: 1}))
}
