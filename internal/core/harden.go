package core

import (
	"errors"
	"fmt"
	"time"

	"dmvcc/internal/baseline"
	"dmvcc/internal/telemetry"
	"dmvcc/internal/types"
)

// ErrCircuitBreaker reports a breaker trip when serial fallback is disabled.
var ErrCircuitBreaker = errors.New("core: circuit breaker tripped")

// Default hardening thresholds. The incarnation cap is far above anything a
// legitimate workload reaches (contended blocks abort single digits per tx)
// yet far below the hard livelock bound, so a pathological cascade degrades
// to serial long before ErrTooManyAborts; the watchdog deadline is generous
// enough that no real block ever meets it without a genuine stall.
const (
	defaultMaxTxIncarnations = 64
	defaultStallTimeout      = 10 * time.Second
	defaultStallRecoveries   = 2
)

// Hardening configures the executor's failure-containment machinery: the
// abort-storm circuit breaker and the per-block stall watchdog. The zero
// value selects the defaults (hardening on); it never changes the result of
// a healthy block — only how pathological ones terminate.
type Hardening struct {
	// MaxTxIncarnations trips the breaker when any single transaction
	// reaches this many re-executions (0 = default 64, <0 = no cap below
	// the hard livelock bound).
	MaxTxIncarnations int
	// WastedGasBudget trips the breaker when the block's cumulative wasted
	// gas (ExecCost units) exceeds it (0 = unlimited).
	WastedGasBudget uint64
	// StallTimeout is the watchdog's no-progress deadline (0 = default 10s,
	// <0 = watchdog disabled).
	StallTimeout time.Duration
	// StallRecoveries is how many forced-recovery rounds (abort every live
	// incarnation, relaunch) the watchdog attempts before tripping the
	// breaker (0 = default 2).
	StallRecoveries int
	// DisableFallback turns breaker trips into an ErrCircuitBreaker error
	// instead of degrading to the serial baseline (strict deployments,
	// tests that must observe the trip).
	DisableFallback bool
}

// withDefaults resolves the zero-value conventions.
func (h Hardening) withDefaults() Hardening {
	if h.MaxTxIncarnations == 0 {
		h.MaxTxIncarnations = defaultMaxTxIncarnations
	}
	if h.StallTimeout == 0 {
		h.StallTimeout = defaultStallTimeout
	}
	if h.StallRecoveries == 0 {
		h.StallRecoveries = defaultStallRecoveries
	}
	return h
}

// trip fires the abort-storm circuit breaker: the first caller wins, records
// the reason, and drains every live incarnation so wg.Wait returns promptly.
// With cancellation set, aborts stop re-enqueueing and freshly dispatched
// incarnations return at entry, so the drain converges. The block then
// either falls back to the serial baseline or fails with ErrCircuitBreaker.
func (r *run) trip(reason string) {
	if !r.cancelled.CompareAndSwap(false, true) {
		return
	}
	r.reasonMu.Lock()
	r.reason = reason
	r.reasonMu.Unlock()
	if fx := r.forensics; fx.Enabled() {
		fx.RecordDegrade(int64(r.block.Number), reason)
	}
	if r.rec.Enabled() {
		// Breaker trips make the schedule non-replayable (the serial
		// fallback has no parallel schedule); the marker tells the capture
		// layer to refuse the block.
		r.rec.RecordMark(OpBreaker, -1, 0)
	}
	r.drainAll(telemetry.AbortForced)
}

// tripReason returns the breaker reason ("" if it never fired).
func (r *run) tripReason() string {
	r.reasonMu.Lock()
	defer r.reasonMu.Unlock()
	return r.reason
}

// noteWasted accumulates wasted gas and checks the breaker budget.
func (r *run) noteWasted(w uint64) {
	total := r.wasted.Add(w)
	if b := r.hard.WastedGasBudget; b > 0 && total > b {
		r.trip(fmt.Sprintf("wasted-gas %d exceeds budget %d", total, b))
	}
}

// noteProgress bumps the watchdog's progress counter. Called on every
// publish, completion, and processed abort victim — anything a live
// scheduler does; a counter frozen for a full deadline is a genuine stall.
func (r *run) noteProgress() { r.progress.Add(1) }

// drainAll force-aborts every unfinished live incarnation through the
// normal abort path (accounting stays consistent; forensic records carry the
// given class). With cancellation set this retires them for good; without
// (watchdog recovery) each aborted transaction relaunches fresh — spurious
// aborts are always correctness-safe under DMVCC.
func (r *run) drainAll(class telemetry.AbortClass) {
	for _, rt := range r.rts {
		rt.mu.Lock()
		inc := int(rt.inc.Load())
		fin := rt.finished
		rt.mu.Unlock()
		if fin {
			continue
		}
		r.abortClassed(victim{tx: rt.idx, inc: inc, readSrc: -1}, rt.idx, class)
	}
}

// containPanic converts a panicking incarnation into a deterministic failed
// incarnation: the worker survives, the incarnation is retired through the
// abort path (which relaunches it), and its partial work is accounted as
// wasted. Injected panics (fault.WorkerPanic) throw between instructions
// with no scheduler locks held; genuine panics from deeper inside the
// machinery are contained best-effort the same way.
func (r *run) containPanic(rt *txRuntime, inc int, acc *accessor, p any) {
	r.stats.panics.Add(1)
	if fx := r.forensics; fx.Enabled() {
		fx.AttributeWasted(rt.idx, inc, wastedOf(acc))
	}
	r.noteWasted(wastedOf(acc))
	r.abortClassed(victim{tx: rt.idx, inc: inc, readSrc: -1}, rt.idx, telemetry.AbortInjected)
}

// wastedOf is the partial-progress waste of an incarnation that died
// mid-flight, floored at the dispatch cost.
func wastedOf(acc *accessor) uint64 {
	if acc != nil && acc.offset > BaseCost {
		return acc.offset
	}
	return BaseCost
}

// startWatchdog launches the stall watchdog (unless disabled) and returns
// the join function ExecuteBlock calls after wg.Wait — the watchdog must
// have exited before the lock-free commit phase walks the sequences.
func (r *run) startWatchdog() func() {
	if r.hard.StallTimeout <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.watchdog(stop)
	}()
	return func() {
		close(stop)
		<-done
	}
}

// watchdog is the per-block stall detector: if the progress counter freezes
// for a full deadline, it dumps pool + sequence diagnostics through the
// forensics collector and force-aborts every live incarnation (they relaunch
// fresh). After StallRecoveries fruitless rounds it trips the breaker.
func (r *run) watchdog(stop <-chan struct{}) {
	d := r.hard.StallTimeout
	timer := time.NewTimer(d)
	defer timer.Stop()
	last := int64(-1)
	attempt := 0
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
		}
		if cur := r.progress.Load(); cur != last {
			last = cur
			timer.Reset(d)
			continue
		}
		if r.cancelled.Load() {
			return
		}
		attempt++
		r.stats.stallRecoveries.Add(1)
		if r.rec.Enabled() {
			// Watchdog recovery rounds are wall-clock driven, not schedule
			// driven — a capture containing one is refused for replay.
			r.rec.RecordMark(OpWatchdog, -1, attempt)
		}
		rep := r.stallReport(attempt)
		if fx := r.forensics; fx.Enabled() {
			fx.RecordStall(rep)
		}
		if attempt > r.hard.StallRecoveries {
			r.trip(fmt.Sprintf("stall: no scheduler progress after %d forced recoveries", attempt-1))
			return
		}
		r.drainAll(telemetry.AbortWatchdog)
		last = r.progress.Load()
		timer.Reset(d)
	}
}

// stallReport snapshots the scheduler for the watchdog's diagnostic dump:
// pool occupancy, unfinished transactions, and every parked waiter with the
// item and writer it is stuck behind.
func (r *run) stallReport(attempt int) telemetry.StallReport {
	running, ready, resume, idle := r.sched.stateSnapshot()
	rep := telemetry.StallReport{
		Block:       int64(r.block.Number),
		Attempt:     attempt,
		Progress:    r.progress.Load(),
		Running:     running,
		ReadyTasks:  ready,
		Resumers:    resume,
		IdleWorkers: idle,
	}
	for _, rt := range r.rts {
		rt.mu.Lock()
		inc := int(rt.inc.Load())
		fin := rt.finished
		rt.mu.Unlock()
		if !fin {
			rep.Pending = append(rep.Pending, telemetry.StallTx{Tx: rt.idx, Inc: inc})
		}
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for id, s := range sh.m {
			s.mu.Lock()
			for _, w := range s.waiters {
				rep.Waiters = append(rep.Waiters, telemetry.StallWaiter{
					Item:      id.Label(),
					ReaderTx:  w.readerTx,
					BlockedOn: w.blockedTx,
				})
			}
			s.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	return rep
}

// degradeToSerial is the breaker's landing path: the parallel attempt has
// been fully drained and its versions discarded; the block re-executes on
// the untouched snapshot through the serial baseline, whose write set and
// receipts are the reference semantics — the committed root is byte-
// identical to serial by construction (Theorem 1's fallback case). Parallel-
// phase statistics are preserved so the storm stays observable; traces are
// nil (there is no parallel schedule to simulate).
func (r *run) degradeToSerial(reason string) (*Result, error) {
	res, err := baseline.ExecuteSerial(r.snap, r.block, r.txsOf())
	if err != nil {
		return nil, fmt.Errorf("core: serial fallback after %s: %w", reason, err)
	}
	stats := r.statsSnapshot()
	stats.Degraded = true
	stats.DegradeReason = reason
	return &Result{
		Receipts:  res.Receipts,
		WriteSet:  res.WriteSet,
		Stats:     stats,
		WastedGas: r.wasted.Load(),
	}, nil
}

// txsOf recovers the block's transaction slice from the runtimes.
func (r *run) txsOf() []*types.Transaction {
	txs := make([]*types.Transaction, len(r.rts))
	for i, rt := range r.rts {
		txs[i] = rt.tx
	}
	return txs
}
