package core

import (
	"testing"
	"time"

	"dmvcc/internal/sag"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

func testItem() sag.ItemID {
	return sag.StorageItem(types.HexToAddress("0xc0"), types.HexToHash("0x01"))
}

func never() bool { return false }

func TestSequenceReadFromSnapshot(t *testing.T) {
	s := newSequence(testItem())
	snap := u256.NewUint64(42)
	val, res, _ := s.tryRead(3, 0, snap, never)
	if res == readBlocked {
		t.Fatal("read with no writers must not block")
	}
	if val.Uint64() != 42 {
		t.Errorf("val = %d, want snapshot 42", val.Uint64())
	}
}

func TestSequenceReadBlocksOnPendingWrite(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(1, kindWrite)
	_, res, wait := s.tryRead(3, 0, u256.Zero, never)
	if res != readBlocked || wait == nil {
		t.Fatal("read after pending write must block")
	}
	// Publishing unblocks (the wait channel closes).
	victims := s.versionWrite(1, 0, u256.NewUint64(7), false)
	if len(victims) != 0 {
		t.Errorf("no completed readers yet, victims = %v", victims)
	}
	select {
	case <-wait:
	default:
		t.Fatal("waiter not woken by publish")
	}
	val, res, _ := s.tryRead(3, 0, u256.Zero, never)
	if res == readBlocked || val.Uint64() != 7 {
		t.Errorf("read after publish = %d (res %d)", val.Uint64(), res)
	}
}

func TestSequenceReadSkipsDropped(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(1, kindWrite)
	s.versionWrite(1, 0, u256.NewUint64(7), false)
	s.dropVersion(1, 0)
	val, res, _ := s.tryRead(3, 0, u256.NewUint64(100), never)
	if res == readBlocked {
		t.Fatal("dropped version must be transparent")
	}
	if val.Uint64() != 100 {
		t.Errorf("val = %d, want snapshot after drop", val.Uint64())
	}
}

func TestSequenceLateWriteAbortsCompletedReader(t *testing.T) {
	s := newSequence(testItem())
	// Reader tx3 completes against the snapshot.
	if _, res, _ := s.tryRead(3, 5, u256.Zero, never); res == readBlocked {
		t.Fatal("setup read blocked")
	}
	// An unpredicted write by tx1 arrives afterwards (the Fig. 5 case).
	victims := s.versionWrite(1, 0, u256.NewUint64(9), false)
	if len(victims) != 1 || victims[0].tx != 3 || victims[0].inc != 5 {
		t.Fatalf("victims = %v, want tx3@inc5", victims)
	}
}

func TestSequenceScanStopsAtInterveningWriter(t *testing.T) {
	s := newSequence(testItem())
	// tx2 writes (done), tx3 read tx2's version, tx5 read it too.
	s.versionWrite(2, 0, u256.NewUint64(5), false)
	s.tryRead(3, 0, u256.Zero, never)
	s.tryRead(5, 0, u256.Zero, never)
	// Now tx1 publishes: tx3/tx5 read tx2's version, NOT tx1's — the scan
	// must stop at tx2's ω and abort nobody.
	victims := s.versionWrite(1, 0, u256.NewUint64(1), false)
	if len(victims) != 0 {
		t.Errorf("scan crossed an intervening writer: victims %v", victims)
	}
}

func TestSequenceDeltaDoesNotAbortDeltaWriters(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(2, kindDelta)
	s.addPredicted(4, kindDelta)
	s.versionWrite(4, 0, u256.NewUint64(10), true)
	// tx2's delta arrives later; delta-delta never conflicts.
	victims := s.versionWrite(2, 0, u256.NewUint64(5), true)
	if len(victims) != 0 {
		t.Errorf("delta invalidated a delta: %v", victims)
	}
	// A reader after both merges them onto the snapshot base.
	val, res, _ := s.tryRead(9, 0, u256.NewUint64(100), never)
	if res == readBlocked {
		t.Fatal("read blocked with all deltas done")
	}
	if val.Uint64() != 115 {
		t.Errorf("merged value = %d, want 100+10+5", val.Uint64())
	}
}

func TestSequenceLateDeltaAbortsCompletedReader(t *testing.T) {
	s := newSequence(testItem())
	s.versionWrite(4, 0, u256.NewUint64(10), true)
	s.tryRead(9, 2, u256.Zero, never) // merged only tx4's delta
	victims := s.versionWrite(2, 0, u256.NewUint64(5), true)
	if len(victims) != 1 || victims[0].tx != 9 {
		t.Errorf("late delta must abort the reader: %v", victims)
	}
}

func TestSequenceReadBlocksOnPendingDelta(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(2, kindDelta)
	if _, res, _ := s.tryRead(5, 0, u256.Zero, never); res != readBlocked {
		t.Fatal("read must wait for a pending delta from an earlier tx")
	}
}

func TestSequenceSameIncarnationDeltaAccumulates(t *testing.T) {
	s := newSequence(testItem())
	s.versionWrite(1, 0, u256.NewUint64(3), true)
	s.versionWrite(1, 0, u256.NewUint64(4), true)
	val, _, _ := s.tryRead(5, 0, u256.Zero, never)
	if val.Uint64() != 7 {
		t.Errorf("accumulated delta = %d, want 7", val.Uint64())
	}
}

func TestSequenceDropAfterRepublishIsIgnored(t *testing.T) {
	s := newSequence(testItem())
	s.versionWrite(1, 0, u256.NewUint64(5), false)
	// Incarnation 1 republished before the aborter got to drop inc 0.
	s.versionWrite(1, 1, u256.NewUint64(6), false)
	s.dropVersion(1, 0)
	val, res, _ := s.tryRead(3, 0, u256.Zero, never)
	if res == readBlocked || val.Uint64() != 6 {
		t.Errorf("val = %d (res %d), want the republished 6", val.Uint64(), res)
	}
}

func TestSequencePublishAfterDropMarkIsIgnored(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(1, kindWrite)
	// Aborter drops incarnation 0 before its in-flight publish lands.
	s.dropVersion(1, 0)
	s.versionWrite(1, 0, u256.NewUint64(5), false)
	val, res, _ := s.tryRead(3, 0, u256.NewUint64(77), never)
	if res == readBlocked {
		t.Fatal("read blocked on a dead version")
	}
	if val.Uint64() != 77 {
		t.Errorf("stale publish resurrected: read %d, want snapshot 77", val.Uint64())
	}
}

func TestSequenceReadWriteUpgrade(t *testing.T) {
	s := newSequence(testItem())
	s.tryRead(2, 0, u256.Zero, never) // tx2 reads -> ρ entry, readDone
	s.versionWrite(2, 0, u256.NewUint64(8), false)
	i, ok := s.find(2)
	if !ok {
		t.Fatal("entry missing")
	}
	if s.entries[i].kind != kindReadWrite {
		t.Errorf("kind = %s, want θ", s.entries[i].kind)
	}
}

func TestSequenceFinalValue(t *testing.T) {
	s := newSequence(testItem())
	snap := u256.NewUint64(100)
	if _, wrote := s.finalValue(snap); wrote {
		t.Error("untouched sequence reports a write")
	}
	s.versionWrite(1, 0, u256.NewUint64(10), false)
	s.versionWrite(3, 0, u256.NewUint64(20), false)
	s.versionWrite(5, 0, u256.NewUint64(7), true) // delta on top
	val, wrote := s.finalValue(snap)
	if !wrote || val.Uint64() != 27 {
		t.Errorf("final = %d (wrote %v), want 20+7", val.Uint64(), wrote)
	}
	// Deltas only: merge onto the snapshot.
	s2 := newSequence(testItem())
	s2.versionWrite(2, 0, u256.NewUint64(5), true)
	val, wrote = s2.finalValue(snap)
	if !wrote || val.Uint64() != 105 {
		t.Errorf("delta-only final = %d, want 105", val.Uint64())
	}
}

func TestSequenceAbortedReaderNotMarked(t *testing.T) {
	s := newSequence(testItem())
	dead := func() bool { return true }
	if _, res, _ := s.tryRead(3, 0, u256.Zero, dead); res != readBlocked {
		t.Fatal("dead incarnation must not complete reads")
	}
	// No read mark must exist for tx3.
	if i, ok := s.find(3); ok && s.entries[i].readDone {
		t.Error("dead incarnation left a read mark")
	}
}

func TestSequenceResetRead(t *testing.T) {
	s := newSequence(testItem())
	s.tryRead(3, 1, u256.Zero, never)
	s.resetRead(3, 1)
	victims := s.versionWrite(1, 0, u256.NewUint64(9), false)
	if len(victims) != 0 {
		t.Errorf("reset read still targeted: %v", victims)
	}
	// Reset with the wrong incarnation leaves the mark.
	s.tryRead(5, 2, u256.Zero, never)
	s.resetRead(5, 1)
	victims = s.versionWrite(4, 0, u256.NewUint64(9), false)
	if len(victims) != 1 {
		t.Errorf("mark for live incarnation lost: %v", victims)
	}
}

func TestGatePriority(t *testing.T) {
	g := newGate(1)
	g.Acquire(5)
	done := make(chan int, 3)
	for _, idx := range []int{9, 2, 7} {
		idx := idx
		go func() {
			g.Acquire(idx)
			done <- idx
			g.Release()
		}()
	}
	// Give the goroutines time to queue, then release: the lowest index
	// must win first.
	waitForWaiters(t, g, 3)
	g.Release()
	first := <-done
	if first != 2 {
		t.Errorf("first acquirer = %d, want 2 (lowest index)", first)
	}
	<-done
	<-done
}

func waitForWaiters(t *testing.T, g *gate, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g.mu.Lock()
		w := len(g.waiting)
		g.mu.Unlock()
		if w >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("waiters never queued")
}

func TestSequenceDebugString(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(1, kindWrite)
	s.versionWrite(1, 0, u256.NewUint64(5), false)
	s.tryRead(3, 0, u256.Zero, never)
	out := s.debugString()
	if out == "" {
		t.Fatal("empty debug string")
	}
	for _, want := range []string{"T1:ω[T]", "T3:ρ"} {
		if !contains(out, want) {
			t.Errorf("debug %q missing %q", out, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
