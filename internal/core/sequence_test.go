package core

import (
	"testing"

	"dmvcc/internal/sag"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

func testItem() sag.ItemID {
	return sag.StorageItem(types.HexToAddress("0xc0"), types.HexToHash("0x01"))
}

func never() bool { return false }

func TestSequenceReadFromSnapshot(t *testing.T) {
	s := newSequence(testItem())
	snap := u256.NewUint64(42)
	val, res, _, _ := s.tryRead(3, 0, snap, never, nil)
	if res == readBlocked {
		t.Fatal("read with no writers must not block")
	}
	if val.Uint64() != 42 {
		t.Errorf("val = %d, want snapshot 42", val.Uint64())
	}
}

func TestSequenceReadBlocksOnPendingWrite(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(1, kindWrite)
	_, res, _, w := s.tryRead(3, 0, u256.Zero, never, nil)
	if res != readBlocked || w == nil {
		t.Fatal("read after pending write must block")
	}
	if w.blockedTx != 1 {
		t.Errorf("waiter parked on tx %d, want 1", w.blockedTx)
	}
	// Publishing unblocks (the wait channel closes).
	victims := s.versionWrite(1, 0, u256.NewUint64(7), false)
	if len(victims) != 0 {
		t.Errorf("no completed readers yet, victims = %v", victims)
	}
	select {
	case <-w.ch:
	default:
		t.Fatal("waiter not woken by publish")
	}
	val, res, _, _ := s.tryRead(3, 0, u256.Zero, never, w)
	if res == readBlocked || val.Uint64() != 7 {
		t.Errorf("read after publish = %d (res %d)", val.Uint64(), res)
	}
}

func TestSequenceReadSkipsDropped(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(1, kindWrite)
	s.versionWrite(1, 0, u256.NewUint64(7), false)
	s.dropVersion(1, 0)
	val, res, _, _ := s.tryRead(3, 0, u256.NewUint64(100), never, nil)
	if res == readBlocked {
		t.Fatal("dropped version must be transparent")
	}
	if val.Uint64() != 100 {
		t.Errorf("val = %d, want snapshot after drop", val.Uint64())
	}
}

func TestSequenceLateWriteAbortsCompletedReader(t *testing.T) {
	s := newSequence(testItem())
	// Reader tx3 completes against the snapshot.
	if _, res, _, _ := s.tryRead(3, 5, u256.Zero, never, nil); res == readBlocked {
		t.Fatal("setup read blocked")
	}
	// An unpredicted write by tx1 arrives afterwards (the Fig. 5 case).
	victims := s.versionWrite(1, 0, u256.NewUint64(9), false)
	if len(victims) != 1 || victims[0].tx != 3 || victims[0].inc != 5 {
		t.Fatalf("victims = %v, want tx3@inc5", victims)
	}
}

// TestSequenceLateWriteAbortsPredictedWriterWhoRead pins the θ-in-effect
// case: tx3's C-SAG predicted only a write of the item (a stale or corrupted
// analysis missed the read part), so its entry is ω — but at runtime tx3
// read the item before publishing. A version published below it must still
// invalidate that completed read; classifying the entry by its predicted
// kind alone loses the abort and commits a value computed from a stale read.
func TestSequenceLateWriteAbortsPredictedWriterWhoRead(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(3, kindWrite)
	if _, res, _, _ := s.tryRead(3, 2, u256.Zero, never, nil); res == readBlocked {
		t.Fatal("setup read blocked")
	}
	victims := s.versionWrite(1, 0, u256.NewUint64(9), false)
	if len(victims) != 1 || victims[0].tx != 3 || victims[0].inc != 2 {
		t.Fatalf("victims = %v, want the read-before-publish ω entry tx3@inc2", victims)
	}
}

// TestSequenceLateWriteAbortsDeltaEntryWhoRead is the ω̄ variant: after
// degradeRead, tx3's predicted-delta entry carries a completed read of the
// delta's true base. A later publish below it must invalidate that read even
// though delta *writes* never conflict with each other.
func TestSequenceLateWriteAbortsDeltaEntryWhoRead(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(3, kindDelta)
	s.versionWrite(3, 2, u256.NewUint64(4), true) // published delta part
	if _, res, _, _ := s.tryRead(3, 2, u256.NewUint64(10), never, nil); res == readBlocked {
		t.Fatal("setup read blocked")
	}
	victims := s.versionWrite(1, 0, u256.NewUint64(9), false)
	if len(victims) != 1 || victims[0].tx != 3 || victims[0].inc != 2 {
		t.Fatalf("victims = %v, want the degraded ω̄ entry tx3@inc2", victims)
	}
}

func TestSequenceScanStopsAtInterveningWriter(t *testing.T) {
	s := newSequence(testItem())
	// tx2 writes (done), tx3 read tx2's version, tx5 read it too.
	s.versionWrite(2, 0, u256.NewUint64(5), false)
	s.tryRead(3, 0, u256.Zero, never, nil)
	s.tryRead(5, 0, u256.Zero, never, nil)
	// Now tx1 publishes: tx3/tx5 read tx2's version, NOT tx1's — the scan
	// must stop at tx2's ω and abort nobody.
	victims := s.versionWrite(1, 0, u256.NewUint64(1), false)
	if len(victims) != 0 {
		t.Errorf("scan crossed an intervening writer: victims %v", victims)
	}
}

func TestSequenceDeltaDoesNotAbortDeltaWriters(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(2, kindDelta)
	s.addPredicted(4, kindDelta)
	s.versionWrite(4, 0, u256.NewUint64(10), true)
	// tx2's delta arrives later; delta-delta never conflicts.
	victims := s.versionWrite(2, 0, u256.NewUint64(5), true)
	if len(victims) != 0 {
		t.Errorf("delta invalidated a delta: %v", victims)
	}
	// A reader after both merges them onto the snapshot base.
	val, res, _, _ := s.tryRead(9, 0, u256.NewUint64(100), never, nil)
	if res == readBlocked {
		t.Fatal("read blocked with all deltas done")
	}
	if val.Uint64() != 115 {
		t.Errorf("merged value = %d, want 100+10+5", val.Uint64())
	}
}

func TestSequenceLateDeltaAbortsCompletedReader(t *testing.T) {
	s := newSequence(testItem())
	s.versionWrite(4, 0, u256.NewUint64(10), true)
	s.tryRead(9, 2, u256.Zero, never, nil) // merged only tx4's delta
	victims := s.versionWrite(2, 0, u256.NewUint64(5), true)
	if len(victims) != 1 || victims[0].tx != 9 {
		t.Errorf("late delta must abort the reader: %v", victims)
	}
}

func TestSequenceReadBlocksOnPendingDelta(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(2, kindDelta)
	if _, res, _, _ := s.tryRead(5, 0, u256.Zero, never, nil); res != readBlocked {
		t.Fatal("read must wait for a pending delta from an earlier tx")
	}
}

func TestSequenceSameIncarnationDeltaAccumulates(t *testing.T) {
	s := newSequence(testItem())
	s.versionWrite(1, 0, u256.NewUint64(3), true)
	s.versionWrite(1, 0, u256.NewUint64(4), true)
	val, _, _, _ := s.tryRead(5, 0, u256.Zero, never, nil)
	if val.Uint64() != 7 {
		t.Errorf("accumulated delta = %d, want 7", val.Uint64())
	}
}

func TestSequenceDropAfterRepublishIsIgnored(t *testing.T) {
	s := newSequence(testItem())
	s.versionWrite(1, 0, u256.NewUint64(5), false)
	// Incarnation 1 republished before the aborter got to drop inc 0.
	s.versionWrite(1, 1, u256.NewUint64(6), false)
	s.dropVersion(1, 0)
	val, res, _, _ := s.tryRead(3, 0, u256.Zero, never, nil)
	if res == readBlocked || val.Uint64() != 6 {
		t.Errorf("val = %d (res %d), want the republished 6", val.Uint64(), res)
	}
}

func TestSequencePublishAfterDropMarkIsIgnored(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(1, kindWrite)
	// Aborter drops incarnation 0 before its in-flight publish lands.
	s.dropVersion(1, 0)
	s.versionWrite(1, 0, u256.NewUint64(5), false)
	val, res, _, _ := s.tryRead(3, 0, u256.NewUint64(77), never, nil)
	if res == readBlocked {
		t.Fatal("read blocked on a dead version")
	}
	if val.Uint64() != 77 {
		t.Errorf("stale publish resurrected: read %d, want snapshot 77", val.Uint64())
	}
}

func TestSequenceReadWriteUpgrade(t *testing.T) {
	s := newSequence(testItem())
	s.tryRead(2, 0, u256.Zero, never, nil) // tx2 reads -> ρ entry, readDone
	s.versionWrite(2, 0, u256.NewUint64(8), false)
	i, ok := s.find(2)
	if !ok {
		t.Fatal("entry missing")
	}
	if s.entries[i].kind != kindReadWrite {
		t.Errorf("kind = %s, want θ", s.entries[i].kind)
	}
}

func TestSequenceFinalValue(t *testing.T) {
	s := newSequence(testItem())
	snap := u256.NewUint64(100)
	if _, wrote := s.finalValue(snap); wrote {
		t.Error("untouched sequence reports a write")
	}
	s.versionWrite(1, 0, u256.NewUint64(10), false)
	s.versionWrite(3, 0, u256.NewUint64(20), false)
	s.versionWrite(5, 0, u256.NewUint64(7), true) // delta on top
	val, wrote := s.finalValue(snap)
	if !wrote || val.Uint64() != 27 {
		t.Errorf("final = %d (wrote %v), want 20+7", val.Uint64(), wrote)
	}
	// Deltas only: merge onto the snapshot.
	s2 := newSequence(testItem())
	s2.versionWrite(2, 0, u256.NewUint64(5), true)
	val, wrote = s2.finalValue(snap)
	if !wrote || val.Uint64() != 105 {
		t.Errorf("delta-only final = %d, want 105", val.Uint64())
	}
}

func TestSequenceAbortedReaderNotMarked(t *testing.T) {
	s := newSequence(testItem())
	dead := func() bool { return true }
	if _, res, _, _ := s.tryRead(3, 0, u256.Zero, dead, nil); res != readAborted {
		t.Fatal("dead incarnation must not complete reads")
	}
	// No read mark must exist for tx3.
	if i, ok := s.find(3); ok && s.entries[i].readDone {
		t.Error("dead incarnation left a read mark")
	}
}

func TestSequenceResetRead(t *testing.T) {
	s := newSequence(testItem())
	s.tryRead(3, 1, u256.Zero, never, nil)
	s.resetRead(3, 1)
	victims := s.versionWrite(1, 0, u256.NewUint64(9), false)
	if len(victims) != 0 {
		t.Errorf("reset read still targeted: %v", victims)
	}
	// Reset with the wrong incarnation leaves the mark.
	s.tryRead(5, 2, u256.Zero, never, nil)
	s.resetRead(5, 1)
	victims = s.versionWrite(4, 0, u256.NewUint64(9), false)
	if len(victims) != 1 {
		t.Errorf("mark for live incarnation lost: %v", victims)
	}
}

// TestSequenceTargetedWakeup checks that publishes wake only the waiters
// whose reads they can affect: a waiter parked at a lower position than the
// mutated entry stays asleep.
func TestSequenceTargetedWakeup(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(2, kindWrite)
	s.addPredicted(6, kindWrite)
	_, res, _, early := s.tryRead(4, 0, u256.Zero, never, nil) // parks on tx2
	if res != readBlocked {
		t.Fatal("reader 4 must block on tx2's pending write")
	}
	_, res, _, late := s.tryRead(9, 0, u256.Zero, never, nil) // parks on tx6
	if res != readBlocked {
		t.Fatal("reader 9 must block on tx6's pending write")
	}
	// tx6 publishes: only the reader positioned after tx6 may wake.
	s.versionWrite(6, 0, u256.NewUint64(1), false)
	select {
	case <-early.ch:
		t.Fatal("reader 4 woken by a publish at position 6 > 4")
	default:
	}
	select {
	case <-late.ch:
	default:
		t.Fatal("reader 9 not woken by the publish it waits behind")
	}
	// tx2 publishes: now the early reader wakes too.
	s.versionWrite(2, 0, u256.NewUint64(2), false)
	select {
	case <-early.ch:
	default:
		t.Fatal("reader 4 not woken by tx2's publish")
	}
}

// TestSequenceOnWakeCallback checks the wake-notification hook: each woken
// waiter fires onWake exactly once with the reader, the entry it parked on,
// and the mutating transaction; waiters that stay asleep fire nothing.
func TestSequenceOnWakeCallback(t *testing.T) {
	type wake struct{ reader, blocked, mut int }
	var wakes []wake
	s := newSequence(testItem())
	s.onWake = func(readerTx, blockedTx, mutTx int) {
		wakes = append(wakes, wake{readerTx, blockedTx, mutTx})
	}
	s.addPredicted(2, kindWrite)
	s.addPredicted(6, kindWrite)
	if _, res, _, _ := s.tryRead(4, 0, u256.Zero, never, nil); res != readBlocked {
		t.Fatal("reader 4 must block on tx2")
	}
	if _, res, _, _ := s.tryRead(9, 0, u256.Zero, never, nil); res != readBlocked {
		t.Fatal("reader 9 must block on tx6")
	}
	// tx6's publish wakes only reader 9 (reader 4 parked earlier at tx2).
	s.versionWrite(6, 0, u256.NewUint64(1), false)
	if len(wakes) != 1 || wakes[0] != (wake{reader: 9, blocked: 6, mut: 6}) {
		t.Fatalf("wakes after tx6 publish = %v, want exactly reader 9", wakes)
	}
	// tx2's publish wakes reader 4.
	s.versionWrite(2, 0, u256.NewUint64(2), false)
	if len(wakes) != 2 || wakes[1] != (wake{reader: 4, blocked: 2, mut: 2}) {
		t.Fatalf("wakes after tx2 publish = %v, want reader 4 second", wakes)
	}
	// A re-publish with everyone already woken fires nothing new.
	s.versionWrite(2, 1, u256.NewUint64(3), false)
	if len(wakes) != 2 {
		t.Fatalf("re-publish fired extra wakes: %v", wakes)
	}
}

// TestSequenceResumeCursor checks the park-position cache: a woken reader
// resumes from the entry it blocked on, and a mutation inside the
// already-scanned window invalidates the cache (stale) so the resumed scan
// still observes it.
func TestSequenceResumeCursor(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(2, kindWrite)
	s.versionWrite(5, 0, u256.NewUint64(50), true) // done delta above tx2
	_, res, _, w := s.tryRead(9, 0, u256.Zero, never, nil)
	if res != readBlocked || w.blockedTx != 2 {
		t.Fatalf("reader must park on tx2 (got blocked=%d res=%d)", w.blockedTx, res)
	}
	if w.deltas.Uint64() != 50 {
		t.Errorf("cached deltas = %d, want 50 (tx5's done delta)", w.deltas.Uint64())
	}
	// A new delta lands inside the scanned window (2 < 7 < 9): stale.
	s.versionWrite(7, 0, u256.NewUint64(7), true)
	if !w.stale {
		t.Error("mutation inside the scanned window must mark the waiter stale")
	}
	s.versionWrite(2, 0, u256.NewUint64(100), false)
	val, res, _, _ := s.tryRead(9, 0, u256.Zero, never, w)
	if res == readBlocked {
		t.Fatal("read still blocked after all publishes")
	}
	if val.Uint64() != 157 {
		t.Errorf("resumed read = %d, want 100+50+7", val.Uint64())
	}
}

// TestSequenceResumeCursorFresh: when nothing touched the scanned window,
// the resumed read reuses the cached deltas (no stale flag) and still
// produces the exact value.
func TestSequenceResumeCursorFresh(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(2, kindWrite)
	s.versionWrite(5, 0, u256.NewUint64(50), true)
	_, _, _, w := s.tryRead(9, 0, u256.Zero, never, nil)
	s.versionWrite(2, 0, u256.NewUint64(100), false)
	if w.stale {
		t.Error("publish at the park position must not mark the cache stale")
	}
	val, res, _, _ := s.tryRead(9, 0, u256.Zero, never, w)
	if res == readBlocked || val.Uint64() != 150 {
		t.Errorf("resumed read = %d (res %d), want 100+50", val.Uint64(), res)
	}
}

func TestSequenceDebugString(t *testing.T) {
	s := newSequence(testItem())
	s.addPredicted(1, kindWrite)
	s.versionWrite(1, 0, u256.NewUint64(5), false)
	s.tryRead(3, 0, u256.Zero, never, nil)
	out := s.debugString()
	if out == "" {
		t.Fatal("empty debug string")
	}
	for _, want := range []string{"T1:ω[T]", "T3:ρ"} {
		if !contains(out, want) {
			t.Errorf("debug %q missing %q", out, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
