package core

import (
	"dmvcc/internal/sag"
	"dmvcc/internal/u256"
)

// TraceEventKind classifies schedule-relevant events of one execution.
type TraceEventKind uint8

// Trace event kinds.
const (
	TraceRead TraceEventKind = iota + 1
	TraceWrite
	TraceDelta
)

// TraceEvent is one cross-transaction dependency event observed during the
// final (committed) incarnation of a transaction: a read of an item, or a
// version publish (absolute or delta), with the gas consumed inside the
// transaction when it fired. Gas is the deterministic virtual-time unit the
// scheduling simulator uses to reproduce the paper's thread-scaling
// figures, mirroring the paper's own "simulated scheduling the transactions
// on a set of threads" methodology (§V-B).
type TraceEvent struct {
	Kind   TraceEventKind
	Item   sag.ItemID
	Offset uint64 // gas consumed within the transaction at the event
	// Src is the version source of a TraceRead: the writer transaction whose
	// version the read observed, or -1 for the committed snapshot (writes
	// and deltas carry -1). The divergence auditor diffs it against the
	// serial twin's resolution.
	Src int
	// Val is the value read (TraceRead) or published (TraceWrite: absolute
	// value; TraceDelta: the delta contribution).
	Val u256.Int
}

// TxTrace is the dependency trace of one committed transaction execution.
type TxTrace struct {
	// Gas is the transaction's virtual service time: execution gas (gas
	// consumed minus the intrinsic charge, which is fee bookkeeping rather
	// than compute) plus BaseCost. Plain Ether transfers therefore cost
	// almost nothing, matching the paper's handling ("we directly
	// transferred Ethers without a need to start an EVM instance").
	Gas uint64
	// Events in program order.
	Events []TraceEvent
}

// BaseCost is the fixed virtual cost of dispatching any transaction.
const BaseCost = 500

// ExecCost converts a receipt's gas usage into virtual service time.
func ExecCost(gasUsed, intrinsic uint64) uint64 {
	if gasUsed <= intrinsic {
		return BaseCost
	}
	return BaseCost + gasUsed - intrinsic
}
