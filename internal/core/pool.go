package core

import (
	"container/heap"
	"sync"
)

// intHeap is a min-heap of transaction indexes (the ready queue). It has
// concrete push/pop instead of container/heap's interface{} protocol, which
// boxes every index into a heap allocation on the dispatch path.
type intHeap []int

// push inserts x (sift-up).
func (h *intHeap) push(x int) {
	s := append(*h, x)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

// pop removes and returns the minimum (sift-down). Caller checks emptiness.
func (h *intHeap) pop() int {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l] < s[m] {
			m = l
		}
		if r < n && s[r] < s[m] {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}

// resumer is a parked transaction goroutine waiting to re-acquire an
// execution slot after its wait channel fired.
type resumer struct {
	idx int
	ch  chan struct{}
}

// resumerHeap is a min-heap of resumers by transaction index.
type resumerHeap []resumer

func (h resumerHeap) Len() int            { return len(h) }
func (h resumerHeap) Less(i, j int) bool  { return h[i].idx < h[j].idx }
func (h resumerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resumerHeap) Push(x interface{}) { *h = append(*h, x.(resumer)) }
func (h *resumerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// defaultMaxBatch caps the number of transactions handed to a worker in one
// dispatch. Large enough to amortize the heap/lock round-trip over a run,
// small enough that a mispredicted run doesn't starve late-arriving
// higher-priority work (aborted transactions requeue through the ready heap
// and get a slot as soon as one frees).
const defaultMaxBatch = 64

// pool schedules transaction incarnations onto a bounded set of worker
// goroutines. It replaces the per-transaction goroutine + gate semaphore:
//
//   - At most `threads` incarnations are runnable at once (the paper's N
//     EVM instances).
//   - Fresh incarnations wait in an index-ordered ready heap. Dispatch
//     hands a worker a *run* — an ascending batch of ready transactions —
//     in one hand-off, so a quiet block costs one lock round-trip per run
//     instead of one per transaction. The run length adapts: an even split
//     of the ready set across threads, capped at maxBatch, and collapsing
//     to single-transaction dispatch while parked readers are waiting to
//     resume (a contended ready set needs slots back at fine granularity).
//   - A worker executes its run in index order holding one slot for the
//     whole run; a transaction that must park on a pending version yields
//     the slot mid-run and re-acquires it through the resumer heap. Both
//     heaps compete on transaction index, so the lowest-indexed runnable
//     transaction always gets the next free slot (Q_ready ordering), and
//     every hand-off wakes exactly one goroutine — there is no broadcast.
//   - Workers are spawned lazily, at most one per dispatched run and only
//     when no idle worker is available. Idle workers are reused LIFO and
//     exit at shutdown. Run-granular spawning keeps a park-heavy block from
//     ballooning the worker count: the old per-transaction dispatch could
//     spin up a goroutine per pending transaction when every worker parked.
type pool struct {
	mu       sync.Mutex
	threads  int
	maxBatch int          // run-length cap (tests override; default 64)
	running  int          // slots currently held by runnable incarnations
	ready    intHeap      // fresh incarnations needing a worker
	resume   resumerHeap  // parked goroutines needing a slot back
	idle     []chan []int // idle workers' hand-off channels (LIFO)
	closed   bool
	runFn    func(idx, worker int)
	spawned  int64 // workers ever spawned (observability, tests)
	runs     int64 // dispatch hand-offs (each = one lock round-trip)
	runTxs   int64 // transactions dispatched across all runs
}

// newPool returns a pool running incarnations via runFn on up to threads
// concurrent slots. runFn receives the transaction index and the stable ID
// of the worker goroutine executing it (telemetry timelines key on it).
func newPool(threads int, runFn func(idx, worker int)) *pool {
	if threads < 1 {
		threads = 1
	}
	return &pool{threads: threads, maxBatch: defaultMaxBatch, runFn: runFn}
}

// enqueue schedules a fresh incarnation of transaction idx.
func (p *pool) enqueue(idx int) {
	p.mu.Lock()
	p.ready.push(idx)
	p.dispatchLocked()
	p.mu.Unlock()
}

// enqueueAll schedules transactions 0..n-1 in one shot (block start).
func (p *pool) enqueueAll(n int) {
	p.mu.Lock()
	p.ready = make(intHeap, 0, n)
	for i := 0; i < n; i++ {
		p.ready = append(p.ready, i) // ascending: already a valid min-heap
	}
	p.dispatchLocked()
	p.mu.Unlock()
}

// yield releases the caller's slot before parking on a wait channel. The
// caller must re-acquire with reacquire before touching shared state again.
func (p *pool) yield() {
	p.mu.Lock()
	p.running--
	p.dispatchLocked()
	p.mu.Unlock()
}

// reacquire blocks until the caller (transaction idx) holds a slot again.
// Lowest-index-first: the slot goes to the smallest index across parked
// resumers and fresh ready tasks.
func (p *pool) reacquire(idx int) {
	p.mu.Lock()
	if p.running < p.threads && len(p.ready) == 0 && len(p.resume) == 0 {
		p.running++
		p.mu.Unlock()
		return
	}
	r := resumer{idx: idx, ch: make(chan struct{})}
	heap.Push(&p.resume, r)
	p.dispatchLocked()
	p.mu.Unlock()
	<-r.ch
}

// runLenLocked picks the next run's length: single-transaction while parked
// readers are queued for slots (contended — the run must not hold a slot
// longer than one incarnation), otherwise an even share of the ready set per
// thread, capped at maxBatch. Called with p.mu held.
func (p *pool) runLenLocked() int {
	if len(p.resume) > 0 {
		return 1
	}
	n := (len(p.ready) + p.threads - 1) / p.threads
	if n > p.maxBatch {
		n = p.maxBatch
	}
	if n < 1 {
		n = 1
	}
	return n
}

// takeRunLocked pops the next run off the ready heap (ascending transaction
// order). Called with p.mu held.
func (p *pool) takeRunLocked() []int {
	n := p.runLenLocked()
	if avail := len(p.ready); n > avail {
		n = avail
	}
	run := make([]int, 0, n)
	for len(run) < n {
		run = append(run, p.ready.pop())
	}
	return run
}

// dispatchLocked hands free slots to the most-preferred waiters. Called
// with p.mu held. Each hand-off wakes exactly one goroutine: a resumer via
// its private channel, or one idle/new worker via its hand-off channel.
// Resumers outrank a ready run starting at a higher index — the parked
// transaction is the lowest-indexed runnable work.
func (p *pool) dispatchLocked() {
	for p.running < p.threads {
		hasTask := len(p.ready) > 0
		hasRes := len(p.resume) > 0
		switch {
		case hasRes && (!hasTask || p.resume[0].idx <= p.ready[0]):
			r := heap.Pop(&p.resume).(resumer)
			p.running++
			close(r.ch)
		case hasTask:
			run := p.takeRunLocked()
			p.running++
			p.runs++
			p.runTxs += int64(len(run))
			if n := len(p.idle); n > 0 {
				ch := p.idle[n-1]
				p.idle = p.idle[:n-1]
				ch <- run // buffered: never blocks under p.mu
			} else {
				wid := int(p.spawned)
				p.spawned++
				go p.worker(run, wid)
			}
		default:
			return
		}
	}
}

// worker executes dispatched runs until the pool shuts down. It starts
// owning a slot for its first run; the run's transactions execute in index
// order under that one slot (parked stretches yield it). After each run it
// releases the slot and parks on a private hand-off channel until dispatch
// assigns the next run. wid is the worker's stable identity across reuses.
func (p *pool) worker(run []int, wid int) {
	for {
		for _, idx := range run {
			p.runFn(idx, wid)
		}
		p.mu.Lock()
		p.running--
		if p.closed {
			p.mu.Unlock()
			return
		}
		ch := make(chan []int, 1)
		p.idle = append(p.idle, ch)
		p.dispatchLocked()
		p.mu.Unlock()
		next, ok := <-ch
		if !ok {
			return
		}
		run = next
	}
}

// shutdown releases all idle workers. Call after every incarnation
// completed (no tasks in flight).
func (p *pool) shutdown() {
	p.mu.Lock()
	p.closed = true
	for _, ch := range p.idle {
		close(ch)
	}
	p.idle = nil
	p.mu.Unlock()
}

// workersSpawned reports how many worker goroutines the pool ever created.
func (p *pool) workersSpawned() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spawned
}

// runStats reports the dispatch telemetry: hand-offs performed and
// transactions covered (runTxs/runs = mean run length).
func (p *pool) runStats() (runs, runTxs int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.runs, p.runTxs
}

// stateSnapshot reports the pool's occupancy for stall diagnostics: slots
// held by runnable incarnations, queued fresh tasks, parked goroutines
// waiting to resume, and idle workers.
func (p *pool) stateSnapshot() (running, ready, resume, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running, len(p.ready), len(p.resume), len(p.idle)
}
