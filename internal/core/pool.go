package core

import (
	"container/heap"
	"sync"
)

// intHeap is a min-heap of transaction indexes (the ready queue).
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// resumer is a parked transaction goroutine waiting to re-acquire an
// execution slot after its wait channel fired.
type resumer struct {
	idx int
	ch  chan struct{}
}

// resumerHeap is a min-heap of resumers by transaction index.
type resumerHeap []resumer

func (h resumerHeap) Len() int            { return len(h) }
func (h resumerHeap) Less(i, j int) bool  { return h[i].idx < h[j].idx }
func (h resumerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resumerHeap) Push(x interface{}) { *h = append(*h, x.(resumer)) }
func (h *resumerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// pool schedules transaction incarnations onto a bounded set of worker
// goroutines. It replaces the per-transaction goroutine + gate semaphore:
//
//   - At most `threads` incarnations are runnable at once (the paper's N
//     EVM instances).
//   - Fresh incarnations wait in an index-ordered ready heap and are pulled
//     by worker goroutines; aborts re-enqueue the transaction instead of
//     spawning a new goroutine.
//   - A transaction that must park on a pending version yields its slot;
//     on wake-up it re-acquires one through the resumer heap. Both heaps
//     compete on transaction index, so the lowest-indexed runnable
//     transaction always gets the next free slot (Q_ready ordering), and
//     every hand-off wakes exactly one goroutine — there is no broadcast.
//   - Workers are spawned lazily: only when a slot and a ready task exist
//     with no idle worker. Idle workers are reused LIFO and exit at
//     shutdown, so a block of n transactions no longer costs n goroutine
//     spawns.
type pool struct {
	mu      sync.Mutex
	threads int
	running int         // slots currently held by runnable incarnations
	ready   intHeap     // fresh incarnations needing a worker
	resume  resumerHeap // parked goroutines needing a slot back
	idle    []chan int  // idle workers' hand-off channels (LIFO)
	closed  bool
	runFn   func(idx, worker int)
	spawned int64 // workers ever spawned (observability, tests)
}

// newPool returns a pool running incarnations via runFn on up to threads
// concurrent slots. runFn receives the transaction index and the stable ID
// of the worker goroutine executing it (telemetry timelines key on it).
func newPool(threads int, runFn func(idx, worker int)) *pool {
	if threads < 1 {
		threads = 1
	}
	return &pool{threads: threads, runFn: runFn}
}

// enqueue schedules a fresh incarnation of transaction idx.
func (p *pool) enqueue(idx int) {
	p.mu.Lock()
	heap.Push(&p.ready, idx)
	p.dispatchLocked()
	p.mu.Unlock()
}

// enqueueAll schedules transactions 0..n-1 in one shot (block start).
func (p *pool) enqueueAll(n int) {
	p.mu.Lock()
	p.ready = make(intHeap, 0, n)
	for i := 0; i < n; i++ {
		p.ready = append(p.ready, i) // ascending: already a valid min-heap
	}
	p.dispatchLocked()
	p.mu.Unlock()
}

// yield releases the caller's slot before parking on a wait channel. The
// caller must re-acquire with reacquire before touching shared state again.
func (p *pool) yield() {
	p.mu.Lock()
	p.running--
	p.dispatchLocked()
	p.mu.Unlock()
}

// reacquire blocks until the caller (transaction idx) holds a slot again.
// Lowest-index-first: the slot goes to the smallest index across parked
// resumers and fresh ready tasks.
func (p *pool) reacquire(idx int) {
	p.mu.Lock()
	if p.running < p.threads && len(p.ready) == 0 && len(p.resume) == 0 {
		p.running++
		p.mu.Unlock()
		return
	}
	r := resumer{idx: idx, ch: make(chan struct{})}
	heap.Push(&p.resume, r)
	p.dispatchLocked()
	p.mu.Unlock()
	<-r.ch
}

// dispatchLocked hands free slots to the most-preferred waiters. Called
// with p.mu held. Each hand-off wakes exactly one goroutine: a resumer via
// its private channel, or one idle/new worker via its hand-off channel.
func (p *pool) dispatchLocked() {
	for p.running < p.threads {
		hasTask := len(p.ready) > 0
		hasRes := len(p.resume) > 0
		switch {
		case hasRes && (!hasTask || p.resume[0].idx <= p.ready[0]):
			r := heap.Pop(&p.resume).(resumer)
			p.running++
			close(r.ch)
		case hasTask:
			idx := heap.Pop(&p.ready).(int)
			p.running++
			if n := len(p.idle); n > 0 {
				ch := p.idle[n-1]
				p.idle = p.idle[:n-1]
				ch <- idx // buffered: never blocks under p.mu
			} else {
				wid := int(p.spawned)
				p.spawned++
				go p.worker(idx, wid)
			}
		default:
			return
		}
	}
}

// worker runs incarnations until the pool shuts down. It starts owning a
// slot for idx; after each incarnation it releases the slot and parks on a
// private hand-off channel until dispatch assigns the next task. wid is the
// worker's stable identity across reuses.
func (p *pool) worker(idx, wid int) {
	for {
		p.runFn(idx, wid)
		p.mu.Lock()
		p.running--
		if p.closed {
			p.mu.Unlock()
			return
		}
		ch := make(chan int, 1)
		p.idle = append(p.idle, ch)
		p.dispatchLocked()
		p.mu.Unlock()
		next, ok := <-ch
		if !ok {
			return
		}
		idx = next
	}
}

// shutdown releases all idle workers. Call after every incarnation
// completed (no tasks in flight).
func (p *pool) shutdown() {
	p.mu.Lock()
	p.closed = true
	for _, ch := range p.idle {
		close(ch)
	}
	p.idle = nil
	p.mu.Unlock()
}

// workersSpawned reports how many worker goroutines the pool ever created.
func (p *pool) workersSpawned() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spawned
}

// stateSnapshot reports the pool's occupancy for stall diagnostics: slots
// held by runnable incarnations, queued fresh tasks, parked goroutines
// waiting to resume, and idle workers.
func (p *pool) stateSnapshot() (running, ready, resume, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running, len(p.ready), len(p.resume), len(p.idle)
}
