package core_test

import (
	"testing"

	"dmvcc/internal/core"
	"dmvcc/internal/sag"
	"dmvcc/internal/telemetry"
	"dmvcc/internal/types"
)

// benchTxs builds the contended ICO/NFT mix used by the exactness tests, at
// a size where scheduler overhead is measurable.
func benchTxs() []*types.Transaction {
	var txs []*types.Transaction
	for i := 0; i < 48; i++ {
		txs = append(txs, call(user(i%60), icoAddr, 1000+uint64(i), "buy"))
		txs = append(txs, call(user(i%60), nftAddr, 0, "mintNFT"))
	}
	return txs
}

// benchExecute runs one block execution with the given tracer attached.
func benchExecute(b *testing.B, tracer *telemetry.Tracer) {
	b.Helper()
	txs := benchTxs()
	db, reg := fixture(b)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		b.Fatal(err)
	}
	ex := core.NewExecutor(reg, 8)
	ex.SetTracer(tracer)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.ExecuteBlock(db, blk, txs, csags); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryNone is the baseline: no tracer attached, the Enabled()
// guard is a nil check.
func BenchmarkTelemetryNone(b *testing.B) {
	benchExecute(b, nil)
}

// BenchmarkTelemetryDisabled attaches a tracer but leaves it disabled: every
// emission site pays the atomic-flag load and nothing else. The contract
// (package doc of internal/telemetry) is that this stays within 2% of
// BenchmarkTelemetryNone.
func BenchmarkTelemetryDisabled(b *testing.B) {
	benchExecute(b, telemetry.NewTracer())
}

// BenchmarkTelemetryEnabled bounds the cost of full event collection, for
// comparison (not part of the <2% contract).
func BenchmarkTelemetryEnabled(b *testing.B) {
	tr := telemetry.NewTracer()
	tr.Enable()
	b.Cleanup(func() { tr.Reset() })
	benchExecute(b, tr)
}
