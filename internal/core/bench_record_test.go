package core_test

import (
	"testing"

	"dmvcc/internal/core"
	"dmvcc/internal/sag"
)

// benchExecuteRecorder runs block executions with the given recorder
// attached (nil = no recorder).
func benchExecuteRecorder(b *testing.B, rc *core.ScheduleRecorder, reset bool) {
	b.Helper()
	txs := benchTxs()
	db, reg := fixture(b)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		b.Fatal(err)
	}
	ex := core.NewExecutor(reg, 8)
	ex.SetRecorder(rc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reset {
			rc.Reset()
		}
		if _, err := ex.ExecuteBlock(db, blk, txs, csags); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecorderNone is the baseline: no recorder attached, every
// emission site pays a nil check.
func BenchmarkRecorderNone(b *testing.B) {
	benchExecuteRecorder(b, nil, false)
}

// BenchmarkRecorderDisabled attaches a recorder but leaves it disabled:
// every emission site pays the atomic-flag load and nothing else. The flight
// recorder follows the telemetry cost discipline — this stays within 2% of
// BenchmarkRecorderNone (the acceptance bar for always-compiled-in
// recording hooks).
func BenchmarkRecorderDisabled(b *testing.B) {
	benchExecuteRecorder(b, core.NewScheduleRecorder(), false)
}

// BenchmarkRecorderEnabled bounds the cost of full schedule capture, for
// comparison (not part of the <2% contract).
func BenchmarkRecorderEnabled(b *testing.B) {
	rc := core.NewScheduleRecorder()
	rc.Enable()
	benchExecuteRecorder(b, rc, true)
}
