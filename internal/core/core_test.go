package core_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"dmvcc/internal/baseline"
	"dmvcc/internal/core"
	"dmvcc/internal/evm"
	"dmvcc/internal/fault"
	"dmvcc/internal/minisol"
	"dmvcc/internal/sag"
	"dmvcc/internal/state"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

var (
	tokenAddr = types.HexToAddress("0xc000000000000000000000000000000000000001")
	indirAddr = types.HexToAddress("0xc000000000000000000000000000000000000002")
	nftAddr   = types.HexToAddress("0xc000000000000000000000000000000000000003")
	icoAddr   = types.HexToAddress("0xc000000000000000000000000000000000000004")
	blk       = evm.BlockContext{Number: 9, Timestamp: 5_000, GasLimit: 30_000_000, ChainID: 1}
)

func user(i int) types.Address {
	var a types.Address
	a[0] = 0xee
	a[18] = byte(i >> 8)
	a[19] = byte(i)
	return a
}

const tokenSrc = `
contract Token {
    mapping(address => uint) balances;
    uint totalSupply;

    function mint(address to, uint amount) public {
        balances[to] += amount;
        totalSupply += amount;
    }

    function transfer(address to, uint amount) public {
        require(balances[msg.sender] >= amount);
        balances[msg.sender] -= amount;
        balances[to] += amount;
    }

    function balanceOf(address a) public view returns (uint) {
        return balances[a];
    }
}
`

const indirectSrc = `
contract Indirect {
    mapping(uint => uint) keyOf;
    mapping(uint => uint) data;

    function setKey(uint k, uint nk) public {
        keyOf[k] = nk;
    }

    function writeAt(uint k, uint v) public {
        data[keyOf[k]] = v;
    }

    function copyTo(uint i, uint j) public {
        data[j] = data[i];
    }

    function read(uint i) public view returns (uint) {
        return data[i];
    }
}
`

const nftSrc = `
contract NFT {
    uint nextId;
    mapping(uint => address) ownerOf;
    mapping(address => uint) count;

    function mintNFT() public returns (uint) {
        uint id = nextId;
        nextId = id + 1;
        ownerOf[id] = msg.sender;
        count[msg.sender] += 1;
        return id;
    }
}
`

const icoSrc = `
contract ICO {
    uint raised;
    mapping(address => uint) contributions;

    function buy() public payable {
        require(msg.value > 0);
        raised += msg.value;
        contributions[msg.sender] += msg.value;
    }
}
`

// fixture builds a deterministic pre-state: contracts deployed, users
// funded with ether and tokens, state committed.
func fixture(t testing.TB) (*state.DB, *sag.Registry) {
	t.Helper()
	db := state.NewDB()
	reg := sag.NewRegistry()
	o := state.NewOverlay(db)
	deploy := func(addr types.Address, src string) {
		c, err := minisol.Compile(src)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		o.SetCode(addr, c.Code)
		reg.RegisterCompiled(addr, c)
	}
	deploy(tokenAddr, tokenSrc)
	deploy(indirAddr, indirectSrc)
	deploy(nftAddr, nftSrc)
	deploy(icoAddr, icoSrc)
	balSlot := uint64(0) // Token.balances
	for i := 0; i < 64; i++ {
		u := user(i)
		o.SetBalance(u, u256.NewUint64(1_000_000_000))
		o.SetStorage(tokenAddr, minisol.MappingSlot(balSlot, u.Word()), u256.NewUint64(10_000))
	}
	if _, err := db.Commit(o.Changes()); err != nil {
		t.Fatal(err)
	}
	return db, reg
}

func call(from types.Address, to types.Address, value uint64, method string, args ...u256.Int) *types.Transaction {
	return &types.Transaction{
		From:  from,
		To:    to,
		Value: u256.NewUint64(value),
		Gas:   2_000_000,
		Data:  minisol.CallData(method, args...),
	}
}

// runBoth executes txs serially on one copy of the fixture and with DMVCC
// on another, compares receipts and committed roots, and returns the DMVCC
// stats.
func runBoth(t *testing.T, build func(testing.TB) (*state.DB, *sag.Registry), txs []*types.Transaction, threads int) core.Stats {
	t.Helper()
	dbSerial, _ := build(t)
	serial, err := baseline.ExecuteSerial(dbSerial, blk, txs)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	rootSerial, err := dbSerial.Commit(serial.WriteSet)
	if err != nil {
		t.Fatal(err)
	}

	dbPar, reg := build(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, dbPar, blk)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	ex := core.NewExecutor(reg, threads)
	res, err := ex.ExecuteBlock(dbPar, blk, txs, csags)
	if err != nil {
		t.Fatalf("dmvcc: %v", err)
	}
	rootPar, err := dbPar.Commit(res.WriteSet)
	if err != nil {
		t.Fatal(err)
	}

	if rootPar != rootSerial {
		for i := range txs {
			t.Logf("tx %d: serial=%s dmvcc=%s", i, serial.Receipts[i].Status, res.Receipts[i].Status)
		}
		t.Fatalf("state roots diverge: dmvcc %s != serial %s (stats %+v)", rootPar, rootSerial, res.Stats)
	}
	for i := range txs {
		if serial.Receipts[i].Status != res.Receipts[i].Status {
			t.Errorf("tx %d status: serial %s, dmvcc %s", i, serial.Receipts[i].Status, res.Receipts[i].Status)
		}
		if serial.Receipts[i].GasUsed != res.Receipts[i].GasUsed {
			t.Errorf("tx %d gas: serial %d, dmvcc %d", i, serial.Receipts[i].GasUsed, res.Receipts[i].GasUsed)
		}
	}
	return res.Stats
}

func TestEmptyBlock(t *testing.T) {
	db, reg := fixture(t)
	ex := core.NewExecutor(reg, 4)
	res, err := ex.ExecuteBlock(db, blk, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Receipts) != 0 || res.WriteSet.Len() != 0 {
		t.Errorf("empty block produced output: %+v", res)
	}
}

func TestSingleTransfer(t *testing.T) {
	txs := []*types.Transaction{call(user(0), tokenAddr, 0, "transfer", user(1).Word(), u256.NewUint64(100))}
	stats := runBoth(t, fixture, txs, 4)
	if stats.Executions != 1 {
		t.Errorf("executions = %d, want 1", stats.Executions)
	}
	if stats.Aborts != 0 {
		t.Errorf("aborts = %d, want 0", stats.Aborts)
	}
}

func TestDependentChain(t *testing.T) {
	// user0 -> user1 -> user2 -> user3, amounts exceeding initial balances
	// so each hop depends on the previous credit.
	txs := []*types.Transaction{
		call(user(0), tokenAddr, 0, "transfer", user(1).Word(), u256.NewUint64(9_000)),
		call(user(1), tokenAddr, 0, "transfer", user(2).Word(), u256.NewUint64(15_000)),
		call(user(2), tokenAddr, 0, "transfer", user(3).Word(), u256.NewUint64(20_000)),
		call(user(3), tokenAddr, 0, "transfer", user(4).Word(), u256.NewUint64(25_000)),
	}
	runBoth(t, fixture, txs, 4)
}

func TestIndependentParallel(t *testing.T) {
	var txs []*types.Transaction
	for i := 0; i < 32; i += 2 {
		txs = append(txs, call(user(i), tokenAddr, 0, "transfer", user(i+1).Word(), u256.NewUint64(50)))
	}
	stats := runBoth(t, fixture, txs, 8)
	if stats.Aborts != 0 {
		t.Errorf("independent txs aborted: %+v", stats)
	}
}

func TestCommutativeICO(t *testing.T) {
	// Everyone buys into the ICO: raised += is a shared counter that would
	// serialize everything without commutative writes.
	var txs []*types.Transaction
	for i := 0; i < 24; i++ {
		txs = append(txs, call(user(i), icoAddr, 1000+uint64(i), "buy"))
	}
	stats := runBoth(t, fixture, txs, 8)
	if stats.DeltaPublishes == 0 {
		t.Errorf("expected delta publishes for ICO counters: %+v", stats)
	}
	if stats.Aborts != 0 {
		t.Errorf("commutative ICO buys should not abort: %+v", stats)
	}
}

func TestNFTMintChainEarlyVisibility(t *testing.T) {
	// nextId is a read-write chain: every mint depends on the previous one.
	var txs []*types.Transaction
	for i := 0; i < 16; i++ {
		txs = append(txs, call(user(i), nftAddr, 0, "mintNFT"))
	}
	stats := runBoth(t, fixture, txs, 8)
	if stats.EarlyPublishes == 0 {
		t.Errorf("expected early publishes on the mint chain: %+v", stats)
	}
}

func TestStaleAnalysisAbortsAndRecovers(t *testing.T) {
	// tx0 redirects keyOf[1] from 0 to 7; tx1's C-SAG (computed against the
	// snapshot) predicts a write to data[0], but at runtime writes data[7];
	// tx2 reads data[7] early (no predicted conflict) and must be aborted
	// and re-executed when tx1's unpredicted write appears (Fig. 5).
	txs := []*types.Transaction{
		call(user(0), indirAddr, 0, "setKey", u256.NewUint64(1), u256.NewUint64(7)),
		call(user(1), indirAddr, 0, "writeAt", u256.NewUint64(1), u256.NewUint64(99)),
		call(user(2), indirAddr, 0, "copyTo", u256.NewUint64(7), u256.NewUint64(5)),
	}
	stats := runBoth(t, fixture, txs, 4)
	if stats.Aborts == 0 {
		t.Logf("warning: expected at least one abort, got %+v (timing dependent)", stats)
	}
	// Verify the final value via a fresh read on a re-built fixture.
	db, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewExecutor(reg, 4).ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit(res.WriteSet); err != nil {
		t.Fatal(err)
	}
	dataSlot := minisol.MappingSlot(1, u256.NewUint64(5)) // Indirect.data
	if got := db.Storage(indirAddr, dataSlot); got.Uint64() != 99 {
		t.Errorf("data[5] = %s, want 99", got.Hex())
	}
}

func TestRevertReleasesWaiters(t *testing.T) {
	// tx0's transfer reverts (insufficient funds): its predicted write to
	// user1's slot never happens; tx1 depends on that slot and must not
	// hang waiting for it.
	txs := []*types.Transaction{
		call(user(0), tokenAddr, 0, "transfer", user(1).Word(), u256.NewUint64(999_999)), // reverts
		call(user(1), tokenAddr, 0, "transfer", user(2).Word(), u256.NewUint64(10_000)),  // uses full balance
	}
	runBoth(t, fixture, txs, 2)
}

// TestMissingCSAGFallback drops or corrupts C-SAGs and checks the scheduler
// falls back to dynamic handling (the paper's missing-SAG path) and stays
// correct: a table over nil graphs, fault-injected corruption of a random
// seeded subset of transactions, and both at once, each at 1, 4, and
// NumCPU threads.
func TestMissingCSAGFallback(t *testing.T) {
	txs := []*types.Transaction{
		call(user(0), tokenAddr, 0, "transfer", user(1).Word(), u256.NewUint64(9_000)),
		call(user(1), tokenAddr, 0, "transfer", user(2).Word(), u256.NewUint64(15_000)),
		call(user(2), tokenAddr, 0, "transfer", user(3).Word(), u256.NewUint64(20_000)),
		call(user(3), tokenAddr, 0, "transfer", user(4).Word(), u256.NewUint64(24_000)),
		call(user(0), icoAddr, 500, "buy"),
		call(user(2), icoAddr, 700, "buy"),
		call(user(1), nftAddr, 0, "mintNFT"),
		call(user(3), nftAddr, 0, "mintNFT"),
	}
	dbSerial, _ := fixture(t)
	serial, err := baseline.ExecuteSerial(dbSerial, blk, txs)
	if err != nil {
		t.Fatal(err)
	}
	rootSerial, err := dbSerial.Commit(serial.WriteSet)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mangle  func(r *rand.Rand, csags []*sag.CSAG) []*sag.CSAG
		corrupt bool // route the block through a fault injector too
	}{
		{name: "nil-middle", mangle: func(r *rand.Rand, csags []*sag.CSAG) []*sag.CSAG {
			csags[1] = nil
			return csags
		}},
		{name: "nil-random-subset", mangle: func(r *rand.Rand, csags []*sag.CSAG) []*sag.CSAG {
			for i := range csags {
				if r.Intn(2) == 0 {
					csags[i] = nil
				}
			}
			return csags
		}},
		{name: "nil-all", mangle: func(r *rand.Rand, csags []*sag.CSAG) []*sag.CSAG {
			for i := range csags {
				csags[i] = nil
			}
			return csags
		}},
		{name: "fault-corrupted-subset", corrupt: true,
			mangle: func(r *rand.Rand, csags []*sag.CSAG) []*sag.CSAG { return csags }},
		{name: "nil-plus-corrupted", corrupt: true,
			mangle: func(r *rand.Rand, csags []*sag.CSAG) []*sag.CSAG {
				csags[r.Intn(len(csags))] = nil
				return csags
			}},
	}
	threadCases := []int{1, 4, runtime.NumCPU()}
	for _, tc := range cases {
		for _, threads := range threadCases {
			t.Run(fmt.Sprintf("%s/threads=%d", tc.name, threads), func(t *testing.T) {
				db, reg := fixture(t)
				an := sag.NewAnalyzer(reg)
				csags, err := an.AnalyzeBlock(txs, db, blk)
				if err != nil {
					t.Fatal(err)
				}
				csags = tc.mangle(rand.New(rand.NewSource(int64(threads))), csags)
				ex := core.NewExecutor(reg, threads)
				if tc.corrupt {
					// Deterministically drop predicted reads/writes/deltas for
					// a seeded subset of transactions through the executor's
					// own corruption hook.
					ex.SetFaults(fault.New(fault.Config{Seed: int64(100 + threads), Rates: map[fault.Point]float64{
						fault.CSAGDropRead:  0.5,
						fault.CSAGDropWrite: 0.5,
						fault.CSAGDropDelta: 0.5,
					}}))
				}
				res, err := ex.ExecuteBlock(db, blk, txs, csags)
				if err != nil {
					t.Fatal(err)
				}
				root, err := db.Commit(res.WriteSet)
				if err != nil {
					t.Fatal(err)
				}
				if root != rootSerial {
					t.Errorf("degraded-CSAG run diverged: %s != %s (stats %+v)", root, rootSerial, res.Stats)
				}
				for i := range txs {
					if serial.Receipts[i].Status != res.Receipts[i].Status {
						t.Errorf("tx %d status: serial %s, dmvcc %s", i, serial.Receipts[i].Status, res.Receipts[i].Status)
					}
				}
			})
		}
	}
}

func TestPlainTransfersAndCalls(t *testing.T) {
	var txs []*types.Transaction
	for i := 0; i < 10; i++ {
		txs = append(txs, &types.Transaction{
			From:  user(i),
			To:    user(i + 20),
			Value: u256.NewUint64(uint64(1000 + i)),
			Gas:   21_000,
		})
		txs = append(txs, call(user(i+32), tokenAddr, 0, "transfer", user(i).Word(), u256.NewUint64(5)))
	}
	runBoth(t, fixture, txs, 8)
}

// TestRandomizedDeterminism is the core property test: random workloads at
// random thread counts must always commit the serial root.
func TestRandomizedDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			var txs []*types.Transaction
			n := 20 + r.Intn(40)
			for i := 0; i < n; i++ {
				from := user(r.Intn(64))
				switch r.Intn(6) {
				case 0: // plain transfer
					txs = append(txs, &types.Transaction{
						From:  from,
						To:    user(r.Intn(64)),
						Value: u256.NewUint64(uint64(r.Intn(10_000))),
						Gas:   21_000,
					})
				case 1, 2: // token transfer, sometimes overdrafting
					txs = append(txs, call(from, tokenAddr, 0, "transfer",
						user(r.Intn(64)).Word(), u256.NewUint64(uint64(r.Intn(15_000)))))
				case 3: // ICO buy
					txs = append(txs, call(from, icoAddr, uint64(1+r.Intn(500)), "buy"))
				case 4: // NFT mint
					txs = append(txs, call(from, nftAddr, 0, "mintNFT"))
				case 5: // indirect writes, occasionally re-keyed
					if r.Intn(3) == 0 {
						txs = append(txs, call(from, indirAddr, 0, "setKey",
							u256.NewUint64(uint64(r.Intn(4))), u256.NewUint64(uint64(r.Intn(8)))))
					} else {
						txs = append(txs, call(from, indirAddr, 0, "writeAt",
							u256.NewUint64(uint64(r.Intn(4))), u256.NewUint64(uint64(r.Intn(1000)))))
					}
				}
			}
			threads := []int{1, 2, 4, 8}[r.Intn(4)]
			runBoth(t, fixture, txs, threads)
		})
	}
}

func TestStatsExecutionsCount(t *testing.T) {
	txs := []*types.Transaction{
		call(user(0), tokenAddr, 0, "transfer", user(1).Word(), u256.NewUint64(1)),
		call(user(2), tokenAddr, 0, "transfer", user(3).Word(), u256.NewUint64(1)),
	}
	stats := runBoth(t, fixture, txs, 2)
	if stats.Executions < 2 {
		t.Errorf("executions = %d, want >= 2", stats.Executions)
	}
	if stats.Executions != 2+stats.Aborts {
		t.Errorf("executions %d != 2 + aborts %d", stats.Executions, stats.Aborts)
	}
}

// TestCascadingAbortChain builds the worst case of Algorithm 4: an
// unpredicted write invalidates a reader whose own early-published write
// was already consumed by a third transaction, which in turn fed a fourth.
// The cascade must abort and re-execute the whole chain and still commit
// the serial root.
func TestCascadingAbortChain(t *testing.T) {
	txs := []*types.Transaction{
		// t0 redirects keyOf[1] from 0 to 5.
		call(user(0), indirAddr, 0, "setKey", u256.NewUint64(1), u256.NewUint64(5)),
		// t1 writes data[keyOf[1]]: predicted data[0], actually data[5].
		call(user(1), indirAddr, 0, "writeAt", u256.NewUint64(1), u256.NewUint64(42)),
		// t2 copies data[5] -> data[6]: its read of data[5] resolves from
		// the snapshot (no predicted writer) and is later invalidated.
		call(user(2), indirAddr, 0, "copyTo", u256.NewUint64(5), u256.NewUint64(6)),
		// t3 copies data[6] -> data[7]: feeds on t2's early-published write.
		call(user(3), indirAddr, 0, "copyTo", u256.NewUint64(6), u256.NewUint64(7)),
	}
	var sawCascade bool
	for attempt := 0; attempt < 20 && !sawCascade; attempt++ {
		stats := runBoth(t, fixture, txs, 4)
		if stats.Aborts >= 2 {
			sawCascade = true
		}
	}
	if !sawCascade {
		t.Log("note: cascade did not trigger in 20 runs (timing dependent); correctness held throughout")
	}
	// Deterministic final state: the 42 propagates down the copy chain.
	db, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, db, blk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewExecutor(reg, 4).ExecuteBlock(db, blk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit(res.WriteSet); err != nil {
		t.Fatal(err)
	}
	for i, want := range map[uint64]uint64{5: 42, 6: 42, 7: 42} {
		slot := minisol.MappingSlot(1, u256.NewUint64(i))
		if got := db.Storage(indirAddr, slot); got.Uint64() != want {
			t.Errorf("data[%d] = %s, want %d", i, got.Hex(), want)
		}
	}
}

// TestNonZeroGasPrices exercises fee settlement under the scheduler: the
// upfront gas purchase (sender debit), the refund, and the coinbase credit
// (a commutative delta shared by every transaction in the block).
func TestNonZeroGasPrices(t *testing.T) {
	coinbase := types.HexToAddress("0xc01bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb")
	feeBlk := blk
	feeBlk.Coinbase = coinbase

	var txs []*types.Transaction
	for i := 0; i < 12; i++ {
		tx := call(user(i), tokenAddr, 0, "transfer", user(i+20).Word(), u256.NewUint64(25))
		tx.GasPrice = u256.NewUint64(uint64(1 + i%3))
		txs = append(txs, tx)
	}
	// Plain transfers with fees too.
	for i := 12; i < 16; i++ {
		tx := &types.Transaction{
			From:     user(i),
			To:       user(i + 20),
			Value:    u256.NewUint64(500),
			Gas:      21_000,
			GasPrice: u256.NewUint64(2),
		}
		txs = append(txs, tx)
	}

	dbSerial, _ := fixture(t)
	serial, err := baseline.ExecuteSerial(dbSerial, feeBlk, txs)
	if err != nil {
		t.Fatal(err)
	}
	rootSerial, err := dbSerial.Commit(serial.WriteSet)
	if err != nil {
		t.Fatal(err)
	}

	dbPar, reg := fixture(t)
	an := sag.NewAnalyzer(reg)
	csags, err := an.AnalyzeBlock(txs, dbPar, feeBlk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewExecutor(reg, 8).ExecuteBlock(dbPar, feeBlk, txs, csags)
	if err != nil {
		t.Fatal(err)
	}
	rootPar, err := dbPar.Commit(res.WriteSet)
	if err != nil {
		t.Fatal(err)
	}
	if rootPar != rootSerial {
		t.Fatalf("fee-paying block diverged: %s != %s (stats %+v)", rootPar, rootSerial, res.Stats)
	}
	// The coinbase collected every fee exactly once.
	var wantFees uint64
	for i, r := range serial.Receipts {
		wantFees += r.GasUsed * txs[i].GasPrice.Uint64()
	}
	if got := dbPar.Balance(coinbase); got.Uint64() != wantFees {
		t.Errorf("coinbase = %d, want %d", got.Uint64(), wantFees)
	}
	// Coinbase credits from distinct txs must be commutative deltas, not a
	// serializing chain.
	if res.Stats.DeltaPublishes == 0 {
		t.Error("expected coinbase fee deltas")
	}
}
