package txpool_test

import (
	"testing"

	"dmvcc/internal/baseline"
	"dmvcc/internal/core"
	"dmvcc/internal/evm"
	"dmvcc/internal/minisol"
	"dmvcc/internal/sag"
	"dmvcc/internal/state"
	"dmvcc/internal/txpool"
	"dmvcc/internal/types"
	"dmvcc/internal/u256"
)

var (
	alice     = types.HexToAddress("0xa11ce00000000000000000000000000000000001")
	bob       = types.HexToAddress("0xb0b0000000000000000000000000000000000002")
	tokenAddr = types.HexToAddress("0xc000000000000000000000000000000000000001")
)

const tokenSrc = `
contract Token {
    mapping(address => uint) balances;

    function mint(address to, uint amount) public {
        balances[to] += amount;
    }

    function transfer(address to, uint amount) public {
        require(balances[msg.sender] >= amount);
        balances[msg.sender] -= amount;
        balances[to] += amount;
    }
}
`

func setup(t *testing.T) (*state.DB, *sag.Registry, *txpool.Pool) {
	t.Helper()
	db := state.NewDB()
	reg := sag.NewRegistry()
	compiled, err := minisol.Compile(tokenSrc)
	if err != nil {
		t.Fatal(err)
	}
	o := state.NewOverlay(db)
	o.SetCode(tokenAddr, compiled.Code)
	reg.RegisterCompiled(tokenAddr, compiled)
	for _, u := range []types.Address{alice, bob} {
		o.SetBalance(u, u256.NewUint64(1_000_000_000))
		o.SetStorage(tokenAddr, minisol.MappingSlot(0, u.Word()), u256.NewUint64(10_000))
	}
	if _, err := db.Commit(o.Changes()); err != nil {
		t.Fatal(err)
	}
	blockCtx := func() evm.BlockContext {
		return evm.BlockContext{Number: 2, Timestamp: 100, GasLimit: 1_000_000_000, ChainID: 1}
	}
	pool := txpool.New(sag.NewAnalyzer(reg), db, db.Root, blockCtx)
	return db, reg, pool
}

func transferTx(nonce uint64, from, to types.Address, amount uint64) *types.Transaction {
	return &types.Transaction{
		Nonce: nonce,
		From:  from,
		To:    tokenAddr,
		Gas:   1_000_000,
		Data:  minisol.CallData("transfer", to.Word(), u256.NewUint64(amount)),
	}
}

func TestAddAnalyzesOffline(t *testing.T) {
	_, _, pool := setup(t)
	tx := transferTx(0, alice, bob, 100)
	if err := pool.Add(tx); err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 1 {
		t.Fatalf("pool size %d", pool.Len())
	}
	csag := pool.SAGFor(tx.Hash())
	if csag == nil {
		t.Fatal("transaction not analyzed on arrival")
	}
	if len(csag.Reads) == 0 || (len(csag.Writes) == 0 && len(csag.Deltas) == 0) {
		t.Errorf("empty analysis: %s", csag)
	}
	analyzed, _ := pool.Stats()
	if analyzed != 1 {
		t.Errorf("analyzed = %d", analyzed)
	}
}

func TestAddDeduplicates(t *testing.T) {
	_, _, pool := setup(t)
	tx := transferTx(0, alice, bob, 100)
	if err := pool.Add(tx); err != nil {
		t.Fatal(err)
	}
	if err := pool.Add(tx); err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 1 {
		t.Errorf("duplicate not rejected: len %d", pool.Len())
	}
}

func TestPackOrdersByArrival(t *testing.T) {
	_, _, pool := setup(t)
	t1 := transferTx(0, alice, bob, 1)
	t2 := transferTx(0, bob, alice, 2)
	t3 := transferTx(1, alice, bob, 3)
	for _, tx := range []*types.Transaction{t1, t2, t3} {
		if err := pool.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	txs, csags := pool.Pack(2)
	if len(txs) != 2 || len(csags) != 2 {
		t.Fatalf("packed %d/%d", len(txs), len(csags))
	}
	if txs[0].Hash() != t1.Hash() || txs[1].Hash() != t2.Hash() {
		t.Error("pack did not preserve arrival order")
	}
	for i, c := range csags {
		if c == nil {
			t.Fatalf("missing csag %d", i)
		}
		if c.TxIndex != i {
			t.Errorf("csag %d has index %d", i, c.TxIndex)
		}
	}
	if pool.Len() != 1 {
		t.Errorf("pool should retain the unpacked tx, len %d", pool.Len())
	}
}

func TestPackRefreshesStaleAnalysis(t *testing.T) {
	db, _, pool := setup(t)
	tx := transferTx(0, alice, bob, 100)
	if err := pool.Add(tx); err != nil {
		t.Fatal(err)
	}
	// Commit an unrelated block: the snapshot root changes, so the cached
	// C-SAG is stale and must be refreshed at pack time.
	ws := state.NewWriteSet()
	ws.Balances[types.HexToAddress("0x99")] = u256.NewUint64(1)
	if _, err := db.Commit(ws); err != nil {
		t.Fatal(err)
	}
	_, csags := pool.Pack(1)
	if csags[0] == nil {
		t.Fatal("stale analysis dropped instead of refreshed")
	}
	_, refreshed := pool.Stats()
	if refreshed != 1 {
		t.Errorf("refreshed = %d, want 1", refreshed)
	}
}

func TestPrepareBlockMixedProvenance(t *testing.T) {
	db, reg, pool := setup(t)
	pooled := transferTx(0, alice, bob, 50)
	foreign := transferTx(0, bob, alice, 70) // never seen by this pool
	if err := pool.Add(pooled); err != nil {
		t.Fatal(err)
	}
	blockTxs := []*types.Transaction{pooled, foreign}
	csags := pool.PrepareBlock(blockTxs)
	if csags[0] == nil || csags[1] == nil {
		t.Fatal("PrepareBlock must supply SAGs for both cached and foreign txs")
	}
	if csags[1].TxIndex != 1 {
		t.Errorf("foreign csag index %d", csags[1].TxIndex)
	}
	if pool.Len() != 0 {
		t.Errorf("pooled duplicate not removed, len %d", pool.Len())
	}

	// The prepared block executes correctly under DMVCC.
	res, err := core.NewExecutor(reg, 4).ExecuteBlock(db, evm.BlockContext{
		Number: 2, Timestamp: 100, GasLimit: 1_000_000_000, ChainID: 1,
	}, blockTxs, csags)
	if err != nil {
		t.Fatal(err)
	}
	root, err := db.Commit(res.WriteSet)
	if err != nil {
		t.Fatal(err)
	}

	// Compare with serial on a twin.
	db2, _, _ := setup(t)
	serial, err := baseline.ExecuteSerial(db2, evm.BlockContext{
		Number: 2, Timestamp: 100, GasLimit: 1_000_000_000, ChainID: 1,
	}, blockTxs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db2.Commit(serial.WriteSet)
	if err != nil {
		t.Fatal(err)
	}
	if root != want {
		t.Errorf("pool-prepared block diverged: %s != %s", root, want)
	}
}

func TestPackEmptyPool(t *testing.T) {
	_, _, pool := setup(t)
	txs, csags := pool.Pack(10)
	if len(txs) != 0 || len(csags) != 0 {
		t.Errorf("empty pool packed %d txs", len(txs))
	}
}
