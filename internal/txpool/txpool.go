// Package txpool implements the validator-side transaction pool of the
// paper's workflow (Fig. 2): transactions arriving from clients or peers
// are analyzed immediately — their C-SAGs constructed against the latest
// snapshot and cached — so that scheduling information is ready *offline*,
// before the block executes. The packer periodically selects transactions
// to form a block; when a mined block arrives containing transactions the
// pool has never seen, their SAGs are missing and the scheduler falls back
// to fully dynamic handling (the paper's missing-SAG path).
package txpool

import (
	"sort"
	"sync"

	"dmvcc/internal/evm"
	"dmvcc/internal/sag"
	"dmvcc/internal/state"
	"dmvcc/internal/types"
)

// entry is one pooled transaction with its cached analysis.
type entry struct {
	tx   *types.Transaction
	csag *sag.CSAG
	// analyzedAt is the snapshot height the C-SAG was computed against;
	// stale analyses are refreshed lazily when packed.
	analyzedAt types.Hash
	seq        uint64 // arrival order
}

// Pool is a concurrency-safe transaction pool with offline SAG analysis.
type Pool struct {
	mu      sync.Mutex
	an      *sag.Analyzer
	snap    state.Reader
	root    func() types.Hash
	block   func() evm.BlockContext
	entries map[types.Hash]*entry
	arrival uint64

	// Stats.
	analyzed  uint64
	refreshed uint64
}

// New returns a pool that analyzes against snap (typically the committed
// StateDB). root must return the current snapshot identity (state root) and
// blockCtx the environment the next block will carry; both are consulted at
// analysis time.
func New(an *sag.Analyzer, snap state.Reader, root func() types.Hash, blockCtx func() evm.BlockContext) *Pool {
	return &Pool{
		an:      an,
		snap:    snap,
		root:    root,
		block:   blockCtx,
		entries: make(map[types.Hash]*entry),
	}
}

// Add inserts a transaction and analyzes it against the latest snapshot
// (the paper's "when receiving a transaction ... each validator first
// analyzes the code of the invoked contract"). Analysis failure is not
// fatal: the transaction stays pooled without a SAG.
func (p *Pool) Add(tx *types.Transaction) error {
	h := tx.Hash()
	p.mu.Lock()
	if _, dup := p.entries[h]; dup {
		p.mu.Unlock()
		return nil
	}
	e := &entry{tx: tx, seq: p.arrival}
	p.arrival++
	p.entries[h] = e
	p.mu.Unlock()

	// Analyze outside the lock: the pre-run can be comparatively slow.
	csag, err := p.an.Analyze(tx, 0, p.snap, p.block())
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, ok := p.entries[h]; ok && err == nil {
		cur.csag = csag
		cur.analyzedAt = p.root()
		p.analyzed++
	}
	return err
}

// Len returns the number of pooled transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Pack selects up to max transactions in arrival order and removes them
// from the pool, returning the transactions and their cached C-SAGs
// (re-indexed to block positions). C-SAGs computed against an outdated
// snapshot are refreshed, mirroring the paper's lazy refinement.
func (p *Pool) Pack(max int) ([]*types.Transaction, []*sag.CSAG) {
	return p.pack(p.block(), max, true)
}

// PackForBlock is Pack with an explicit block context and deferred refresh,
// for pipelined executors: a pipeline packs block N+1 while block N still
// executes, so the pool's current-height context would be wrong, and stale
// cached analyses come back as nil entries for the pipeline's offline
// analysis stage to refresh concurrently with execution instead of
// synchronously here.
func (p *Pool) PackForBlock(blockCtx evm.BlockContext, max int) ([]*types.Transaction, []*sag.CSAG) {
	return p.pack(blockCtx, max, false)
}

// pack implements Pack/PackForBlock: selection in arrival order, then
// either synchronous stale-analysis refresh (refresh=true) or nil holes.
func (p *Pool) pack(blockCtx evm.BlockContext, max int, refresh bool) ([]*types.Transaction, []*sag.CSAG) {
	p.mu.Lock()
	selected := make([]*entry, 0, max)
	for _, e := range p.entries {
		selected = append(selected, e)
	}
	sort.Slice(selected, func(i, j int) bool { return selected[i].seq < selected[j].seq })
	if len(selected) > max {
		selected = selected[:max]
	}
	for _, e := range selected {
		delete(p.entries, e.tx.Hash())
	}
	curRoot := p.root()
	p.mu.Unlock()

	txs := make([]*types.Transaction, len(selected))
	csags := make([]*sag.CSAG, len(selected))
	for i, e := range selected {
		txs[i] = e.tx
		switch {
		case e.csag == nil:
			// Never analyzed (analysis failed or is still in flight):
			// dynamic fallback.
		case e.analyzedAt != curRoot:
			// Stale analysis: refresh against the current snapshot, or
			// leave the hole for the caller's offline stage.
			if !refresh {
				continue
			}
			if fresh, err := p.an.Analyze(e.tx, i, p.snap, blockCtx); err == nil {
				fresh.TxIndex = i
				csags[i] = fresh
				p.mu.Lock()
				p.refreshed++
				p.mu.Unlock()
			}
		default:
			e.csag.TxIndex = i
			csags[i] = e.csag
		}
	}
	return txs, csags
}

// SAGFor returns the cached C-SAG for a transaction received in a mined
// block, or nil when the pool never saw it (the validator must fall back to
// dynamic handling or on-the-fly construction).
func (p *Pool) SAGFor(h types.Hash) *sag.CSAG {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[h]; ok {
		return e.csag
	}
	return nil
}

// PrepareBlock resolves the C-SAGs for a block mined elsewhere: cached
// analyses are used where available and the rest are constructed on the
// fly (the paper's "the validator constructs a SAG for it on-the-fly"),
// removing any pooled duplicates.
func (p *Pool) PrepareBlock(txs []*types.Transaction) []*sag.CSAG {
	blockCtx := p.block()
	csags := make([]*sag.CSAG, len(txs))
	for i, tx := range txs {
		h := tx.Hash()
		p.mu.Lock()
		e, pooled := p.entries[h]
		var cached *sag.CSAG
		if pooled {
			cached = e.csag
			delete(p.entries, h)
		}
		p.mu.Unlock()
		if cached != nil {
			cached.TxIndex = i
			csags[i] = cached
			continue
		}
		if fresh, err := p.an.Analyze(tx, i, p.snap, blockCtx); err == nil {
			csags[i] = fresh
		}
	}
	return csags
}

// Stats reports analysis counters: total offline analyses and lazy
// refreshes performed at pack time.
func (p *Pool) Stats() (analyzed, refreshed uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.analyzed, p.refreshed
}
